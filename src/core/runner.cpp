#include "core/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "nn/zoo/zoo.hpp"

namespace loom::core {

ExperimentRunner::ExperimentRunner(RunnerOptions opts) : opts_(std::move(opts)) {}

sim::SimOptions ExperimentRunner::sim_options() const {
  sim::SimOptions sim_opts;
  sim_opts.model_offchip = opts_.model_offchip;
  sim_opts.am_bytes = opts_.am_bytes;
  sim_opts.wm_bytes = opts_.wm_bytes;
  sim_opts.dram = opts_.dram;
  return sim_opts;
}

std::unique_ptr<sim::Simulator> ExperimentRunner::make_baseline() const {
  arch::DpnnConfig cfg;
  cfg.equiv_macs = opts_.equiv_macs;
  return sim::make_dpnn_simulator(cfg, sim_options());
}

std::size_t ExperimentRunner::roster_size() const noexcept {
  return static_cast<std::size_t>(opts_.include_stripes) +
         static_cast<std::size_t>(opts_.include_dstripes) +
         opts_.loom_bits.size() +
         static_cast<std::size_t>(opts_.include_laconic);
}

std::unique_ptr<sim::Simulator> ExperimentRunner::make_roster_entry(
    std::size_t index) const {
  LOOM_EXPECTS(index < roster_size());
  const sim::SimOptions sim_opts = sim_options();

  if (opts_.include_stripes) {
    if (index == 0) {
      arch::StripesConfig s;
      s.equiv_macs = opts_.equiv_macs;
      s.dynamic_act_precision = false;
      return sim::make_stripes_simulator(s, sim_opts);
    }
    --index;
  }
  if (opts_.include_dstripes) {
    if (index == 0) {
      arch::StripesConfig s;
      s.equiv_macs = opts_.equiv_macs;
      s.dynamic_act_precision = true;
      return sim::make_stripes_simulator(s, sim_opts);
    }
    --index;
  }
  if (index < opts_.loom_bits.size()) {
    arch::LoomConfig l;
    l.equiv_macs = opts_.equiv_macs;
    l.bits_per_cycle = opts_.loom_bits[index];
    l.per_group_weights = opts_.per_group_weights;
    return sim::make_loom_simulator(l, sim_opts);
  }
  // Laconic rides last so the Stripes/Loom roster indices are unchanged.
  arch::LaconicConfig lc;
  lc.equiv_macs = opts_.equiv_macs;
  return sim::make_laconic_simulator(lc, sim_opts);
}

std::vector<std::unique_ptr<sim::Simulator>> ExperimentRunner::make_roster() const {
  std::vector<std::unique_ptr<sim::Simulator>> roster;
  roster.reserve(roster_size());
  for (std::size_t i = 0; i < roster_size(); ++i) {
    roster.push_back(make_roster_entry(i));
  }
  return roster;
}

std::vector<std::string> ExperimentRunner::roster_names() const {
  std::vector<std::string> names;
  for (const auto& sim : make_roster()) names.push_back(sim->name());
  return names;
}

sim::NetworkWorkload& ExperimentRunner::workload_for(const std::string& network) {
  const std::lock_guard<std::mutex> lock(workloads_mutex_);
  for (auto& [name, wl] : workloads_) {
    if (name == network) return *wl;
  }
  sim::WorkloadOptions wl_opts;
  wl_opts.seed = opts_.seed;
  workloads_.emplace_back(
      network, sim::prepare_network(network, opts_.target, wl_opts));
  return *workloads_.back().second;
}

int ExperimentRunner::effective_jobs() const {
  if (opts_.jobs > 0) return opts_.jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

sim::Comparison ExperimentRunner::compare(const std::vector<std::string>& networks) {
  const std::vector<std::string>& names =
      networks.empty() ? nn::zoo::paper_networks() : networks;

  const int jobs = effective_jobs();
  if (jobs > 1) return compare_parallel(names, jobs);

  auto baseline = make_baseline();
  auto roster = make_roster();
  std::vector<sim::Simulator*> roster_ptrs;
  roster_ptrs.reserve(roster.size());
  for (const auto& sim : roster) roster_ptrs.push_back(sim.get());

  sim::Comparison cmp;
  for (const std::string& net : names) {
    cmp.add_network(workload_for(net), *baseline, roster_ptrs);
  }
  return cmp;
}

sim::Comparison ExperimentRunner::compare_parallel(
    const std::vector<std::string>& names, int jobs) {
  // One cell per (network, arch slot); slot 0 is the DPNN baseline, slots
  // 1..R the roster in run order. Every cell gets a fresh simulator (they
  // carry per-run state) but cells of the same network share one workload,
  // whose memoized caches are internally synchronized. All cell outputs are
  // deterministic, so the assembly below matches the serial path exactly.
  const std::size_t slots = 1 + roster_size();
  std::vector<sim::RunResult> cells(names.size() * slots);

  ThreadPool pool(std::min(static_cast<std::size_t>(jobs), cells.size()));
  pool.parallel_for(cells.size(), [&](std::size_t idx) {
    const std::size_t ni = idx / slots;
    const std::size_t ai = idx % slots;
    sim::NetworkWorkload& wl = workload_for(names[ni]);
    std::unique_ptr<sim::Simulator> sim =
        ai == 0 ? make_baseline() : make_roster_entry(ai - 1);
    cells[idx] = sim->run(wl);
  });

  sim::Comparison cmp;
  for (std::size_t ni = 0; ni < names.size(); ++ni) {
    std::vector<sim::RunResult> runs(
        std::make_move_iterator(cells.begin() + static_cast<std::ptrdiff_t>(ni * slots + 1)),
        std::make_move_iterator(cells.begin() + static_cast<std::ptrdiff_t>((ni + 1) * slots)));
    cmp.add_network_results(names[ni], std::move(cells[ni * slots]),
                            std::move(runs));
  }
  return cmp;
}

sim::RunResult ExperimentRunner::run_single(const std::string& arch_key,
                                            const std::string& network) {
  const sim::SimOptions sim_opts = sim_options();

  std::unique_ptr<sim::Simulator> sim;
  if (arch_key == "dpnn") {
    arch::DpnnConfig cfg;
    cfg.equiv_macs = opts_.equiv_macs;
    sim = sim::make_dpnn_simulator(cfg, sim_opts);
  } else if (arch_key == "stripes" || arch_key == "dstripes") {
    arch::StripesConfig cfg;
    cfg.equiv_macs = opts_.equiv_macs;
    cfg.dynamic_act_precision = (arch_key == "dstripes");
    sim = sim::make_stripes_simulator(cfg, sim_opts);
  } else if (arch_key == "lm1b" || arch_key == "lm2b" || arch_key == "lm4b") {
    arch::LoomConfig cfg;
    cfg.equiv_macs = opts_.equiv_macs;
    cfg.bits_per_cycle = arch_key[2] - '0';
    cfg.per_group_weights = opts_.per_group_weights;
    sim = sim::make_loom_simulator(cfg, sim_opts);
  } else if (arch_key == "laconic") {
    arch::LaconicConfig cfg;
    cfg.equiv_macs = opts_.equiv_macs;
    sim = sim::make_laconic_simulator(cfg, sim_opts);
  } else {
    throw ConfigError("unknown architecture key: " + arch_key);
  }
  return sim->run(workload_for(network));
}

RunnerOptions runner_options_from_cli(const Options& cli) {
  RunnerOptions opts;
  opts.equiv_macs = static_cast<int>(cli.get_int("equiv", opts.equiv_macs));
  opts.target = cli.get_int("target", 100) == 99 ? quant::AccuracyTarget::k99
                                                 : quant::AccuracyTarget::k100;
  opts.per_group_weights =
      cli.get_bool("per-group-weights", opts.per_group_weights);
  // --offchip is the historical spelling; --model-offchip matches the
  // SimOptions knob. Constrained mode stays the sweep default.
  opts.model_offchip = cli.get_bool(
      "model-offchip", cli.get_bool("offchip", opts.model_offchip));
  opts.am_bytes = cli.get_int("am-kb", 0) * 1024;
  opts.wm_bytes = cli.get_int("wm-kb", 0) * 1024;
  opts.seed = static_cast<std::uint64_t>(cli.get_int(
      "seed", static_cast<std::int64_t>(opts.seed)));
  opts.jobs = static_cast<int>(cli.get_int("jobs", opts.jobs));
  opts.include_stripes = !cli.get_bool("no-stripes", false);
  opts.include_dstripes = cli.get_bool("dstripes", opts.include_dstripes);
  opts.include_laconic = !cli.get_bool("no-laconic", false);
  if (cli.has("loom-bits")) {
    opts.loom_bits.clear();
    for (const std::string& b : cli.get_list("loom-bits", {})) {
      // strtol like the other getters — never throws; non-numeric entries
      // (including a bare --loom-bits flag) are dropped, and invalid bit
      // widths still fail loudly in LoomConfig::validate.
      const long bits = std::strtol(b.c_str(), nullptr, 10);
      if (bits > 0) opts.loom_bits.push_back(static_cast<int>(bits));
    }
  }
  return opts;
}

}  // namespace loom::core
