#include "core/reports.hpp"

#include <sstream>

#include "common/table.hpp"
#include "mem/tile_plan.hpp"
#include "nn/zoo/zoo.hpp"

namespace loom::core {

namespace {

using sim::RunResult;

void append_section(TextTable& table, const sim::Comparison& cmp,
                    const std::vector<std::string>& archs,
                    RunResult::Filter filter) {
  for (const std::string& net : nn::zoo::paper_networks()) {
    std::vector<std::string> row{net};
    bool any = false;
    for (const std::string& arch : archs) {
      bool found = false;
      for (const auto& e : cmp.entries(filter)) {
        if (e.network == net && e.arch == arch) {
          row.push_back(TextTable::num(e.perf));
          row.push_back(TextTable::num(e.eff));
          found = true;
          any = true;
          break;
        }
      }
      if (!found) {
        row.push_back("n/a");
        row.push_back("n/a");
      }
    }
    if (any) table.add_row(std::move(row));
  }
  std::vector<std::string> geo{"geomean"};
  for (const std::string& arch : archs) {
    const auto g = cmp.geomeans(arch, filter);
    geo.push_back(g.perf > 0 ? TextTable::num(g.perf) : "n/a");
    geo.push_back(g.eff > 0 ? TextTable::num(g.eff) : "n/a");
  }
  table.add_rule();
  table.add_row(std::move(geo));
}

TextTable make_header(const std::string& title,
                      const std::vector<std::string>& archs) {
  TextTable table(title);
  std::vector<std::string> header{"Network"};
  for (const std::string& arch : archs) {
    // Shorten "LM1b(E=128, ...)" style names to their prefix.
    const std::string short_name = arch.substr(0, arch.find('('));
    header.push_back(short_name + " Perf");
    header.push_back(short_name + " Eff");
  }
  table.set_header(std::move(header));
  return table;
}

}  // namespace

std::string format_table2(const sim::Comparison& cmp,
                          const std::vector<std::string>& archs,
                          const std::string& title) {
  std::ostringstream out;
  {
    TextTable t = make_header(title + " — FULLY-CONNECTED LAYERS", archs);
    append_section(t, cmp, archs, RunResult::Filter::kFc);
    out << t.render() << '\n';
  }
  {
    TextTable t = make_header(title + " — CONVOLUTIONAL LAYERS", archs);
    append_section(t, cmp, archs, RunResult::Filter::kConv);
    out << t.render();
  }
  return out.str();
}

std::string format_all_layers(const sim::Comparison& cmp,
                              const std::vector<std::string>& archs,
                              const std::string& title) {
  TextTable t = make_header(title + " — ALL LAYERS COMBINED", archs);
  append_section(t, cmp, archs, RunResult::Filter::kAll);
  return t.render();
}

std::string format_table1() {
  std::ostringstream out;
  TextTable conv("Table 1 — Convolutional layers (activation/W precisions)");
  conv.set_header({"Network", "100% Act (per layer)", "100% W",
                   "99% Act (per layer)", "99% W"});
  auto join = [](const std::vector<int>& v) {
    std::string s;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) s += '-';
      s += std::to_string(v[i]);
    }
    return s;
  };
  for (const std::string& net : nn::zoo::paper_networks()) {
    const auto& p100 = quant::profile_for(net, quant::AccuracyTarget::k100);
    const auto& p99 = quant::profile_for(net, quant::AccuracyTarget::k99);
    conv.add_row({net, join(p100.conv_act), std::to_string(p100.conv_weight),
                  join(p99.conv_act), std::to_string(p99.conv_weight)});
  }
  out << conv.render() << '\n';

  TextTable fc("Table 1 — Fully-connected layers (weight precisions)");
  fc.set_header({"Network", "100% W (per layer)", "99% W (per layer)"});
  for (const std::string& net : nn::zoo::paper_networks()) {
    const auto& p100 = quant::profile_for(net, quant::AccuracyTarget::k100);
    const auto& p99 = quant::profile_for(net, quant::AccuracyTarget::k99);
    fc.add_row({net, p100.fc_weight.empty() ? "n/a" : join(p100.fc_weight),
                p99.fc_weight.empty() ? "n/a" : join(p99.fc_weight)});
  }
  out << fc.render();
  return out.str();
}

std::string format_layer_breakdown(const sim::RunResult& run) {
  TextTable t(run.arch_name + " on " + run.network);
  t.set_header({"Layer", "Kind", "Cycles", "Stall", "MACs", "Util", "Pa", "Pw"});
  for (const auto& l : run.layers) {
    t.add_row({l.name,
               l.kind == nn::LayerKind::kConv ? "conv" : "fc",
               std::to_string(l.compute_cycles),
               std::to_string(l.stall_cycles),
               std::to_string(l.macs),
               TextTable::num(l.utilization),
               TextTable::num(l.mean_act_precision, 1),
               TextTable::num(l.mean_weight_precision, 1)});
  }
  t.add_rule();
  t.add_row({"total", "", std::to_string(run.cycles()), "",
             std::to_string(run.macs()), "", "", ""});
  return t.render();
}

std::string format_memory_breakdown(const sim::RunResult& run) {
  TextTable t(run.arch_name + " on " + run.network + " — memory hierarchy");
  t.set_header({"Layer", "Tiles", "ActFill(Kb)", "WFill(Kb)", "Drain(Kb)",
                "FillCyc", "Stall", "Resident", "Dataflow"});
  const auto kb = [](std::uint64_t bits) {
    return TextTable::num(static_cast<double>(bits) / 1024.0, 1);
  };
  std::uint64_t fills = 0;
  std::uint64_t stalls = 0;
  std::uint64_t act_fills = 0;
  std::uint64_t weight_fills = 0;
  std::uint64_t drains = 0;
  for (const auto& l : run.layers) {
    const auto& m = l.memory;
    std::string resident;
    resident += m.acts_resident ? 'A' : '-';
    resident += m.weights_resident ? 'W' : '-';
    t.add_row({l.name, std::to_string(m.tiles), kb(m.act_fill_bits),
               kb(m.weight_fill_bits), kb(m.out_drain_bits),
               std::to_string(m.fill_cycles), std::to_string(l.stall_cycles),
               resident,
               m.dataflow == static_cast<std::uint8_t>(
                                 mem::Dataflow::kActStationary)
                   ? "act-st"
                   : "wgt-st"});
    fills += m.fill_cycles;
    stalls += l.stall_cycles;
    act_fills += m.act_fill_bits;
    weight_fills += m.weight_fill_bits;
    drains += m.out_drain_bits;
  }
  t.add_rule();
  t.add_row({"total", "", kb(act_fills), kb(weight_fills), kb(drains),
             std::to_string(fills), std::to_string(stalls), "", ""});
  return t.render();
}

}  // namespace loom::core
