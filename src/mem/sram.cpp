#include "mem/sram.hpp"

#include "common/error.hpp"

namespace loom::mem {

SramBuffer::SramBuffer(std::string name, std::int64_t capacity_bits,
                       int port_bits)
    : name_(std::move(name)), capacity_bits_(capacity_bits), port_bits_(port_bits) {
  LOOM_EXPECTS(capacity_bits > 0 && port_bits > 0);
}

}  // namespace loom::mem
