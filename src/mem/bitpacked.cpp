#include "mem/bitpacked.hpp"

#include "common/error.hpp"

namespace loom::mem {

std::int64_t packed_bits(std::int64_t count, int precision, int row_bits) {
  LOOM_EXPECTS(count >= 0 && precision >= 1 && precision <= kBasePrecision);
  LOOM_EXPECTS(row_bits >= 1);
  // Bit-plane layout: each of the `precision` planes occupies
  // ceil(count / row_bits) rows of the memory interface.
  const std::int64_t rows_per_plane = ceil_div(count, row_bits);
  return rows_per_plane * row_bits * precision;
}

std::int64_t parallel_bits(std::int64_t count, int row_bits) {
  LOOM_EXPECTS(count >= 0 && row_bits >= 1);
  const std::int64_t values_per_row = row_bits / kBasePrecision;
  LOOM_EXPECTS(values_per_row >= 1);
  return ceil_div(count, values_per_row) * row_bits;
}

double compression_ratio(std::int64_t count, int precision) {
  if (count == 0) return 1.0;
  return static_cast<double>(parallel_bits(count)) /
         static_cast<double>(packed_bits(count, precision));
}

}  // namespace loom::mem
