#include "mem/dram.hpp"

#include <cmath>

#include "common/error.hpp"

namespace loom::mem {

DramChannel::DramChannel(DramConfig cfg) : cfg_(cfg) {
  LOOM_EXPECTS(cfg.peak_gbps > 0 && cfg.efficiency > 0 && cfg.efficiency <= 1.0);
  LOOM_EXPECTS(cfg.clock_ghz > 0 && cfg.burst_bytes > 0);
}

double DramChannel::bytes_per_cycle() const noexcept {
  return cfg_.peak_gbps * cfg_.efficiency / cfg_.clock_ghz;
}

std::uint64_t DramChannel::cycles_for_bits(std::uint64_t bits) const noexcept {
  if (bits == 0) return 0;
  const std::uint64_t burst_bits = static_cast<std::uint64_t>(cfg_.burst_bytes) * 8;
  const std::uint64_t bursts = (bits + burst_bits - 1) / burst_bits;
  const double bytes = static_cast<double>(bursts * static_cast<std::uint64_t>(cfg_.burst_bytes));
  return static_cast<std::uint64_t>(std::ceil(bytes / bytes_per_cycle()));
}

}  // namespace loom::mem
