#include "mem/timeline.hpp"

#include <algorithm>

namespace loom::mem {

void MemoryTimeline::begin_layer() {
  act_barrier_ = compute_done_;
  layer_ = {};
}

void MemoryTimeline::add_tile(std::uint64_t weight_fill_cycles,
                              std::uint64_t act_fill_cycles,
                              std::uint64_t drain_cycles,
                              std::uint64_t compute_cycles) {
  // Two buffers only: tile i's fill needs the buffer tile i-2's compute
  // ran from, so it cannot start before that compute retired — the
  // channel never runs unboundedly ahead of the pipeline.
  const std::uint64_t gate_for_next = compute_done_;
  std::uint64_t fill_done =
      std::max(channel_free_, fill_gate_) + weight_fill_cycles;
  if (act_fill_cycles > 0) {
    // Activation fills read the previous layer's outputs: they cannot
    // start before that compute retired.
    fill_done = std::max(fill_done, act_barrier_) + act_fill_cycles;
  }
  channel_free_ = fill_done;

  // Now the bus is momentarily idle: flush drains deferred behind this
  // fill (they were only waiting for their compute, which has retired).
  if (pending_drain_cycles_ > 0) {
    channel_free_ = std::max(channel_free_, pending_drain_earliest_) +
                    pending_drain_cycles_;
    pending_drain_cycles_ = 0;
  }

  // Double-buffer swap: compute waits for both its data and the previous
  // tile's compute; the gap is this tile's stall.
  const std::uint64_t compute_start = std::max(fill_done, compute_done_);
  const std::uint64_t stall = compute_start - compute_done_;
  compute_done_ = compute_start + compute_cycles;

  if (drain_cycles > 0) {
    // Defer behind the next tile's fill; never before this compute.
    pending_drain_cycles_ += drain_cycles;
    pending_drain_earliest_ = compute_done_;
  }

  layer_.stall_cycles += stall;
  layer_.fill_cycles += weight_fill_cycles + act_fill_cycles + drain_cycles;
  layer_.max_tile_stall = std::max(layer_.max_tile_stall, stall);
  if (stall > 0) ++layer_.stalled_tiles;
  ++layer_.tiles;
  fill_gate_ = gate_for_next;
}

MemoryTimeline::LayerStats MemoryTimeline::end_layer() {
  const LayerStats stats = layer_;
  layer_ = {};
  return stats;
}

std::uint64_t MemoryTimeline::finish() {
  if (pending_drain_cycles_ > 0) {
    channel_free_ = std::max(channel_free_, pending_drain_earliest_) +
                    pending_drain_cycles_;
    pending_drain_cycles_ = 0;
  }
  return channel_free_ > compute_done_ ? channel_free_ - compute_done_ : 0;
}

}  // namespace loom::mem
