// The memory system a simulator runs against: on-chip AM/WM (eDRAM),
// ABin/ABout (SRAM) and one off-chip LPDDR4 channel. The default sizing
// follows §4.5: DPNN needs 2 MB of activation memory; Loom, storing
// bit-packed activations, needs 1 MB; weight memory scales with the
// configuration (512 KB at E=32 up to 8 MB at E=512).
#pragma once

#include <cstdint>

#include "mem/dram.hpp"
#include "mem/edram.hpp"
#include "mem/sram.hpp"

namespace loom::mem {

struct MemorySystemConfig {
  std::int64_t am_bytes = 2 << 20;     ///< activation memory capacity
  std::int64_t wm_bytes = 2 << 20;     ///< weight memory capacity
  std::int64_t abin_bytes = 8 << 10;   ///< input activation buffer
  std::int64_t about_bytes = 8 << 10;  ///< output activation buffer
  int am_interface_bits = 256;
  int wm_interface_bits = 2048;
  bool model_offchip = false;  ///< false = §4.3 mode (unconstrained weights)
  DramConfig dram;
};

/// Default sizing for an architecture at equivalent compute E.
/// `bit_packed` selects Loom's packed activation storage (1 MB AM).
[[nodiscard]] MemorySystemConfig default_memory_config(int equiv_macs,
                                                       bool bit_packed);

class MemorySystem {
 public:
  explicit MemorySystem(MemorySystemConfig cfg);

  [[nodiscard]] const MemorySystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] EdramArray& am() noexcept { return am_; }
  [[nodiscard]] EdramArray& wm() noexcept { return wm_; }
  [[nodiscard]] SramBuffer& abin() noexcept { return abin_; }
  [[nodiscard]] SramBuffer& about() noexcept { return about_; }
  [[nodiscard]] const DramChannel& dram() const noexcept { return dram_; }

  /// True if a layer's input+output activation footprint fits the AM.
  [[nodiscard]] bool activations_fit(std::int64_t bits) const noexcept {
    return am_.fits(bits);
  }

  /// Record an off-chip transfer; returns the DRAM cycles it occupies.
  std::uint64_t offchip_read(std::uint64_t bits) noexcept;
  std::uint64_t offchip_write(std::uint64_t bits) noexcept;

  [[nodiscard]] const TrafficCounters& offchip_traffic() const noexcept {
    return offchip_;
  }

 private:
  MemorySystemConfig cfg_;
  EdramArray am_;
  EdramArray wm_;
  SramBuffer abin_;
  SramBuffer about_;
  DramChannel dram_;
  TrafficCounters offchip_;
};

}  // namespace loom::mem
