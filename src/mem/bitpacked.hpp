// Footprint accounting for bit-interleaved storage. Loom stores weights and
// activations packed to the per-layer precision (§3.2), so a layer's
// footprint is values x precision bits; the bit-parallel baseline always
// spends 16 bits per value.
#pragma once

#include <cstdint>

#include "common/bitops.hpp"

namespace loom::mem {

/// Bits to store `count` values at `precision` bits each (bit-interleaved;
/// rows padded to the `row_bits`-wide memory interface). The layout this
/// prices is the one arch::serialize materializes: with row_bits = 64 the
/// result is exactly that packing's word count times 64 (pinned by test,
/// so the accounting and the packing cannot drift apart).
[[nodiscard]] std::int64_t packed_bits(std::int64_t count, int precision,
                                       int row_bits = 2048);

/// Bits for the same values in the baseline's 16-bit layout.
[[nodiscard]] std::int64_t parallel_bits(std::int64_t count, int row_bits = 2048);

/// Compression ratio of packed vs 16-bit storage (> 1 means smaller).
[[nodiscard]] double compression_ratio(std::int64_t count, int precision);

}  // namespace loom::mem
