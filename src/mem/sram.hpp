// SRAM buffer model (ABin / ABout). Capacity, interface width and traffic
// counting; energy and area per access come from the coefficient tables
// (CACTI-class numbers for 65 nm, see energy/coefficients.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "mem/traffic.hpp"

namespace loom::mem {

class SramBuffer {
 public:
  SramBuffer(std::string name, std::int64_t capacity_bits, int port_bits);

  void read(std::uint64_t bits) noexcept { traffic_.add_read(bits); }
  void write(std::uint64_t bits) noexcept { traffic_.add_write(bits); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t capacity_bits() const noexcept { return capacity_bits_; }
  [[nodiscard]] int port_bits() const noexcept { return port_bits_; }
  [[nodiscard]] const TrafficCounters& traffic() const noexcept { return traffic_; }
  [[nodiscard]] bool fits(std::int64_t bits) const noexcept {
    return bits <= capacity_bits_;
  }
  void reset() noexcept { traffic_ = {}; }

 private:
  std::string name_;
  std::int64_t capacity_bits_;
  int port_bits_;
  TrafficCounters traffic_;
};

}  // namespace loom::mem
