// Off-chip memory: a single channel of LPDDR4-4267 (paper §4.5). A x32
// channel at 4267 MT/s peaks at ~17.07 GB/s; sustained bandwidth applies a
// command/refresh efficiency factor, and transfers round up to the burst
// granularity (BL16 x 32 bits = 64 bytes).
#pragma once

#include <cstdint>

namespace loom::mem {

struct DramConfig {
  double peak_gbps = 17.066;   ///< 4267 MT/s x 32 bits
  double efficiency = 0.75;    ///< sustained fraction of peak
  double clock_ghz = 1.0;      ///< accelerator clock for cycle conversion
  int burst_bytes = 64;        ///< BL16 x32 burst granularity
};

class DramChannel {
 public:
  explicit DramChannel(DramConfig cfg = {});

  /// Accelerator cycles to transfer `bits` (rounded up to whole bursts).
  [[nodiscard]] std::uint64_t cycles_for_bits(std::uint64_t bits) const noexcept;

  /// Sustained bytes per accelerator cycle.
  [[nodiscard]] double bytes_per_cycle() const noexcept;

  [[nodiscard]] const DramConfig& config() const noexcept { return cfg_; }

 private:
  DramConfig cfg_;
};

}  // namespace loom::mem
