#include "mem/edram.hpp"

#include "common/error.hpp"

namespace loom::mem {

EdramArray::EdramArray(std::string name, std::int64_t capacity_bits,
                       int interface_bits)
    : name_(std::move(name)),
      capacity_bits_(capacity_bits),
      interface_bits_(interface_bits) {
  LOOM_EXPECTS(capacity_bits > 0 && interface_bits > 0);
}

}  // namespace loom::mem
