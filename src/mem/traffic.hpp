// Traffic counters shared by the memory components and the simulators.
#pragma once

#include <cstdint>

namespace loom::mem {

struct TrafficCounters {
  std::uint64_t read_bits = 0;
  std::uint64_t write_bits = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;

  [[nodiscard]] std::uint64_t total_bits() const noexcept {
    return read_bits + write_bits;
  }

  void add_read(std::uint64_t bits) noexcept {
    read_bits += bits;
    ++read_ops;
  }
  void add_write(std::uint64_t bits) noexcept {
    write_bits += bits;
    ++write_ops;
  }
  void merge(const TrafficCounters& other) noexcept {
    read_bits += other.read_bits;
    write_bits += other.write_bits;
    read_ops += other.read_ops;
    write_ops += other.write_ops;
  }
};

}  // namespace loom::mem
