// Tile scheduler for the constrained memory hierarchy (§4.5 / Figure 5).
//
// A layer rarely fits on chip whole: the activation memory holds a window
// slab, the weight memory a filter block, and everything else streams over
// the single LPDDR4 channel. build_tile_plan partitions a layer's
// (window x filter) iteration space into AM/WM-resident tiles and decides
// the loop order (dataflow) that moves the fewest DRAM bits:
//
//  * window slabs: contiguous window ranges whose input region plus output
//    chunk fits half the AM (double-buffered fills);
//  * filter tiles: output-channel ranges whose weights fit half the WM,
//    aligned to the architecture's concurrency quantum so the cycle models
//    can cost a tile exactly;
//  * weight-stream chunks: when even one filter quantum's weights exceed
//    the WM budget (the fat fully-connected layers), the weight stream is
//    cut into chunks that are double-buffered through the WM while the
//    same windows stay resident.
//
// Footprints are *bit-packed*: activations at the profile precision (or the
// per-window-block precisions the dynamic detector finds — leading zero
// planes are never transferred), weights at the profile weight precision
// for packing architectures, 16 bits for the bit-parallel baselines. The
// plan is pure arithmetic over geometry — no simulator types — so the same
// scheduler serves Loom, Stripes and DPNN.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"

namespace loom::mem {

/// Loop order of the tile schedule.
enum class Dataflow {
  kWeightStationary,  ///< outer filter tiles, inner window slabs
  kActStationary,     ///< outer window slabs, inner filter tiles
};

/// One schedulable unit: a (conv group, window slab, filter range) block,
/// possibly one chunk of a weight stream that exceeds the WM budget.
/// `*_fill_bits` / `out_drain_bits` are the DRAM transfers the executed
/// schedule assigns to this tile (zero when the data is already resident).
struct TileExtent {
  int conv_group = 0;
  std::int64_t window_begin = 0;
  std::int64_t window_end = 0;  ///< [begin, end)
  std::int64_t filter_begin = 0;
  std::int64_t filter_end = 0;  ///< group-relative output channels [begin, end)
  int chunk = 0;                ///< weight-stream chunk index within the block
  int chunk_count = 1;
  std::int64_t weight_values = 0;  ///< weights streamed by this chunk

  std::int64_t act_fill_bits = 0;
  std::int64_t weight_fill_bits = 0;
  std::int64_t out_drain_bits = 0;

  std::int64_t act_footprint_bits = 0;     ///< AM residency of the slab
  std::int64_t weight_footprint_bits = 0;  ///< WM residency of the chunk

  [[nodiscard]] std::int64_t window_count() const noexcept {
    return window_end - window_begin;
  }
  [[nodiscard]] std::int64_t filter_count() const noexcept {
    return filter_end - filter_begin;
  }
};

/// Everything the scheduler needs to know about one layer. Convolutional
/// layers fill the full geometry; fully-connected layers use windows = 1,
/// in_h = in_w = out_w = kernel_h = 1 and group_in_channels = Ci.
struct TilePlanRequest {
  // Iteration space.
  std::int64_t windows = 1;
  int conv_groups = 1;
  std::int64_t group_out_channels = 0;
  std::int64_t inner_length = 0;  ///< weights per output channel

  // Input-region geometry for slab footprints.
  std::int64_t group_in_channels = 0;
  std::int64_t in_h = 1;
  std::int64_t in_w = 1;
  std::int64_t out_w = 1;  ///< windows per output row
  int kernel_h = 1;
  int stride = 1;
  int pad = 0;

  // Tile quanta: slab sizes are multiples of window_quantum (the dynamic
  // detection / column granularity) and filter tiles multiples of
  // filter_quantum (the architecture's concurrent outputs), so cycle
  // models can cost tiles without changing the layer total.
  std::int64_t window_quantum = 16;
  std::int64_t filter_quantum = 16;

  // Storage precisions (bits per value as laid out in AM/WM and DRAM).
  int act_precision = kBasePrecision;
  /// Optional dynamic packing: per-(conv group, window block) detected
  /// precisions, flattened g * ceil(windows / window_quantum) + block.
  /// Empty means act_precision everywhere.
  std::vector<int> act_block_precision;
  int weight_precision = kBasePrecision;
  bool weights_bit_packed = false;  ///< packed_bits vs parallel_bits layout
  /// Optional essential-plane packing (sparse weight skipping): mean bits a
  /// weight occupies in DRAM/WM when groups store only the bit-planes in
  /// which some weight has a one, plus the plane-presence metadata. 0 keeps
  /// the dense weight_precision layout. Footprints are priced at
  /// ceil(values * mean) — fractional because the plane count varies per
  /// group while the planner works in whole-tile value counts.
  double weight_mean_plane_bits = 0.0;
  int out_precision = kBasePrecision;

  // Capacities (bits).
  std::int64_t am_bits = 0;
  std::int64_t wm_bits = 0;
  bool double_buffer = true;  ///< plan fills against half of each capacity
};

struct TilePlan {
  /// Tiles in execution order of the chosen dataflow.
  std::vector<TileExtent> tiles;
  Dataflow dataflow = Dataflow::kWeightStationary;

  bool acts_resident = false;     ///< whole in+out activations fit the AM
  bool weights_resident = false;  ///< whole layer weights fit the WM

  std::int64_t window_tiles = 1;  ///< slabs per conv group
  std::int64_t filter_tiles = 1;  ///< filter blocks per conv group

  // DRAM totals of the executed schedule (sum over tiles).
  std::int64_t act_fill_bits = 0;
  std::int64_t weight_fill_bits = 0;
  std::int64_t out_drain_bits = 0;

  [[nodiscard]] std::int64_t total_fill_bits() const noexcept {
    return act_fill_bits + weight_fill_bits;
  }
  [[nodiscard]] std::int64_t total_dram_bits() const noexcept {
    return act_fill_bits + weight_fill_bits + out_drain_bits;
  }
};

/// Build the tile schedule for one layer. Throws ContractViolation when the
/// AM cannot hold even a single window-quantum slab (the caller sized the
/// memory below the hardware's minimum working set).
[[nodiscard]] TilePlan build_tile_plan(const TilePlanRequest& req);

}  // namespace loom::mem
