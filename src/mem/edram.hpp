// eDRAM model for the Activation Memory (AM) and Weight Memory (WM),
// following the paper's Destiny-modeled on-chip memories: wide interface,
// capacity checks and traffic counting.
#pragma once

#include <cstdint>
#include <string>

#include "mem/traffic.hpp"

namespace loom::mem {

class EdramArray {
 public:
  EdramArray(std::string name, std::int64_t capacity_bits, int interface_bits);

  void read(std::uint64_t bits) noexcept { traffic_.add_read(bits); }
  void write(std::uint64_t bits) noexcept { traffic_.add_write(bits); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t capacity_bits() const noexcept { return capacity_bits_; }
  [[nodiscard]] int interface_bits() const noexcept { return interface_bits_; }
  [[nodiscard]] bool fits(std::int64_t bits) const noexcept {
    return bits <= capacity_bits_;
  }
  [[nodiscard]] const TrafficCounters& traffic() const noexcept { return traffic_; }
  void reset() noexcept { traffic_ = {}; }

 private:
  std::string name_;
  std::int64_t capacity_bits_;
  int interface_bits_;
  TrafficCounters traffic_;
};

}  // namespace loom::mem
