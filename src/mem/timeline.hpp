// Double-buffered memory timeline: the shared clock that turns a tile
// schedule into per-tile stalls instead of a whole-layer bandwidth guess.
//
// The model is a two-stage pipeline over one LPDDR4 channel:
//
//  * the channel services transfers in FIFO order — tile fills first, with
//    output drains deferred behind the *next* tile's fill (reads have
//    priority; writes sit in the store buffer until the bus idles, but
//    never start before their producing tile's compute retires);
//  * a tile's compute starts once its fill completes AND the previous
//    tile's compute retires (the double buffer swaps); the gap between the
//    two is that tile's stall;
//  * weight fills may prefetch across layer boundaries (the next layer's
//    weights are known ahead of time), while activation fills wait for the
//    producing layer's compute — begin_layer() records that barrier.
//
// One timeline spans a whole network run, so a layer's weight stream
// overlaps the previous layer's compute exactly as the double-buffered WM
// of §4.5 allows.
#pragma once

#include <cstdint>

namespace loom::mem {

/// Per-layer summary the timeline hands back to the simulators; stored on
/// each LayerResult for the reports/CSV drill-down.
struct MemoryTrace {
  std::uint64_t tiles = 0;
  std::uint64_t act_fill_bits = 0;
  std::uint64_t weight_fill_bits = 0;
  std::uint64_t out_drain_bits = 0;
  std::uint64_t fill_cycles = 0;   ///< DRAM channel-busy cycles of this layer
  std::uint64_t stall_cycles = 0;  ///< compute gaps attributed to this layer
  std::uint64_t max_tile_stall = 0;
  std::uint64_t stalled_tiles = 0;  ///< tiles whose compute had to wait
  /// Layer compute minus the sum of the per-tile block cycles. Must be the
  /// model's per-layer constants (pipeline fill, FC stagger) plus rounding
  /// only — a drift here means a simulator's tile callback no longer
  /// mirrors its analytic loop (tests pin it exactly for static configs).
  std::int64_t compute_residual_cycles = 0;
  bool acts_resident = true;
  bool weights_resident = true;
  std::uint8_t dataflow = 0;  ///< mem::Dataflow of the executed schedule

  [[nodiscard]] std::uint64_t total_dram_bits() const noexcept {
    return act_fill_bits + weight_fill_bits + out_drain_bits;
  }
};

class MemoryTimeline {
 public:
  struct LayerStats {
    std::uint64_t stall_cycles = 0;
    std::uint64_t fill_cycles = 0;
    std::uint64_t max_tile_stall = 0;
    std::uint64_t stalled_tiles = 0;
    std::uint64_t tiles = 0;
  };

  /// Start a new layer: its activation fills cannot begin before every
  /// prior compute retires (the inputs are the previous layer's outputs).
  void begin_layer();

  /// Advance the pipeline by one tile, giving the channel cycles of its
  /// weight fill (prefetchable), activation fill (barrier-bound), output
  /// drain (deferred behind the next fill) and its compute cycles.
  void add_tile(std::uint64_t weight_fill_cycles,
                std::uint64_t act_fill_cycles, std::uint64_t drain_cycles,
                std::uint64_t compute_cycles);

  /// Stats accumulated since the matching begin_layer().
  [[nodiscard]] LayerStats end_layer();

  /// Flush deferred drains; returns the cycles the channel keeps running
  /// past the last compute (charged to the final layer by the caller).
  [[nodiscard]] std::uint64_t finish();

 private:
  std::uint64_t channel_free_ = 0;
  std::uint64_t compute_done_ = 0;
  std::uint64_t fill_gate_ = 0;  ///< compute-retire time of the tile two back
  std::uint64_t act_barrier_ = 0;
  std::uint64_t pending_drain_cycles_ = 0;
  std::uint64_t pending_drain_earliest_ = 0;
  LayerStats layer_;
};

}  // namespace loom::mem
