#include "mem/hierarchy.hpp"

#include "common/error.hpp"

namespace loom::mem {

MemorySystemConfig default_memory_config(int equiv_macs, bool bit_packed) {
  LOOM_EXPECTS(equiv_macs > 0);
  MemorySystemConfig cfg;
  // §4.5: DPNN needs 2 MB for activations; Loom's bit-packed storage
  // halves that. Weight memory scales with compute: 16 KB per equivalent
  // MAC/cycle (512 KB at E=32 ... 8 MB at E=512, Figure 5's labels).
  cfg.am_bytes = bit_packed ? (1 << 20) : (2 << 20);
  cfg.wm_bytes = static_cast<std::int64_t>(equiv_macs) * 16 * 1024;
  cfg.wm_interface_bits = equiv_macs * 16;
  return cfg;
}

MemorySystem::MemorySystem(MemorySystemConfig cfg)
    : cfg_(cfg),
      am_("AM", cfg.am_bytes * 8, cfg.am_interface_bits),
      wm_("WM", cfg.wm_bytes * 8, cfg.wm_interface_bits),
      abin_("ABin", cfg.abin_bytes * 8, cfg.am_interface_bits),
      about_("ABout", cfg.about_bytes * 8, cfg.am_interface_bits),
      dram_(cfg.dram) {}

std::uint64_t MemorySystem::offchip_read(std::uint64_t bits) noexcept {
  offchip_.add_read(bits);
  return dram_.cycles_for_bits(bits);
}

std::uint64_t MemorySystem::offchip_write(std::uint64_t bits) noexcept {
  offchip_.add_write(bits);
  return dram_.cycles_for_bits(bits);
}

}  // namespace loom::mem
