#include "mem/tile_plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "mem/bitpacked.hpp"

namespace loom::mem {

namespace {

/// DRAM/WM bits for `values` weights under the request's layout.
std::int64_t weight_layout_bits(const TilePlanRequest& req, std::int64_t values) {
  if (values <= 0) return 0;
  if (req.weight_mean_plane_bits > 0.0) {
    // Essential-plane packing: groups drop their all-zero bit-planes, so
    // footprints shrink to the measured mean occupancy (incl. metadata).
    return static_cast<std::int64_t>(
        std::ceil(static_cast<double>(values) * req.weight_mean_plane_bits));
  }
  return req.weights_bit_packed ? packed_bits(values, req.weight_precision)
                                : parallel_bits(values);
}

/// Bits one weight-stream chunk occupies. Normally the padded row layout;
/// when the budget sits below a single padded row (degenerate tiny WMs)
/// the stream trickles through unpadded, value by value.
std::int64_t chunk_layout_bits(const TilePlanRequest& req, std::int64_t values,
                               std::int64_t budget) {
  const std::int64_t padded = weight_layout_bits(req, values);
  if (padded <= budget) return padded;
  const int prec =
      req.weights_bit_packed ? req.weight_precision : kBasePrecision;
  return values * prec;
}

/// Largest weight-value count whose layout fits `budget` bits (>= 1).
std::int64_t max_weight_values_for(const TilePlanRequest& req,
                                   std::int64_t budget) {
  constexpr std::int64_t kRowBits = 2048;
  if (req.weights_bit_packed) {
    const std::int64_t rows = budget / (kRowBits * req.weight_precision);
    if (rows >= 1) return rows * kRowBits;
    return std::max<std::int64_t>(1, budget / req.weight_precision);
  }
  const std::int64_t values_per_row = kRowBits / kBasePrecision;
  const std::int64_t rows = budget / kRowBits;
  if (rows >= 1) return rows * values_per_row;
  return std::max<std::int64_t>(1, budget / kBasePrecision);
}

/// Input rows a window range touches (clamped to the feature map).
std::int64_t slab_region_rows(const TilePlanRequest& req, std::int64_t w0,
                              std::int64_t w1) {
  const std::int64_t out_row0 = w0 / req.out_w;
  const std::int64_t out_row1 = (w1 - 1) / req.out_w;
  const std::int64_t r0 =
      std::max<std::int64_t>(0, out_row0 * req.stride - req.pad);
  const std::int64_t r1 = std::min<std::int64_t>(
      req.in_h, out_row1 * req.stride - req.pad + req.kernel_h);
  return std::max<std::int64_t>(0, r1 - r0);
}

/// Elements of one conv group's input region for a window range.
std::int64_t slab_region_elements(const TilePlanRequest& req, std::int64_t w0,
                                  std::int64_t w1) {
  return req.group_in_channels * slab_region_rows(req, w0, w1) * req.in_w;
}

/// Detected packing precision of (conv group g, window range): the max over
/// the dynamic detector's window-block precisions, or the static profile
/// precision when no per-block table was supplied. Transfers skip the
/// leading zero planes above it.
int slab_act_precision(const TilePlanRequest& req, int g, std::int64_t w0,
                       std::int64_t w1) {
  if (req.act_block_precision.empty()) return req.act_precision;
  const std::int64_t blocks = ceil_div(req.windows, req.window_quantum);
  const std::int64_t b0 = w0 / req.window_quantum;
  const std::int64_t b1 = ceil_div(w1, req.window_quantum);
  int prec = 1;
  for (std::int64_t b = b0; b < b1; ++b) {
    prec = std::max(prec,
                    req.act_block_precision[static_cast<std::size_t>(
                        g * blocks + b)]);
  }
  return prec;
}

/// DRAM bits to fill one conv group's slice of a window slab.
std::int64_t slab_fill_bits(const TilePlanRequest& req, int g, std::int64_t w0,
                            std::int64_t w1) {
  return slab_region_elements(req, w0, w1) *
         static_cast<std::int64_t>(slab_act_precision(req, g, w0, w1));
}

/// AM residency of a slab: input region at the *provisioned* (profile)
/// precision — the AM layout cannot shrink below it — plus the output
/// chunk of the concurrently processed filter tile.
std::int64_t slab_footprint_bits(const TilePlanRequest& req, std::int64_t w0,
                                 std::int64_t w1, std::int64_t filter_tile) {
  const std::int64_t in_bits =
      slab_region_elements(req, w0, w1) * req.act_precision;
  const std::int64_t out_bits = (w1 - w0) * filter_tile * req.out_precision;
  return in_bits + out_bits;
}

/// True when every slab of size `s` fits `budget` (footprints are monotone
/// in the slab size, so the caller can binary-search on this).
bool slabs_fit(const TilePlanRequest& req, std::int64_t s,
               std::int64_t filter_tile, std::int64_t budget) {
  for (std::int64_t w0 = 0; w0 < req.windows; w0 += s) {
    const std::int64_t w1 = std::min(req.windows, w0 + s);
    if (slab_footprint_bits(req, w0, w1, filter_tile) > budget) return false;
  }
  return true;
}

}  // namespace

TilePlan build_tile_plan(const TilePlanRequest& req) {
  LOOM_EXPECTS(req.windows >= 1 && req.conv_groups >= 1);
  LOOM_EXPECTS(req.group_out_channels >= 1 && req.inner_length >= 1);
  LOOM_EXPECTS(req.window_quantum >= 1 && req.filter_quantum >= 1);
  LOOM_EXPECTS(req.act_precision >= 1 && req.act_precision <= kBasePrecision);
  LOOM_EXPECTS(req.weight_precision >= 1 &&
               req.weight_precision <= kBasePrecision);
  // Essential-plane packing only makes sense for a bit-packed layout. The
  // bound allows the worst case of dense full-precision weights: all 16
  // magnitude planes essential plus the sign pass and presence bitmap.
  LOOM_EXPECTS(req.weight_mean_plane_bits >= 0.0 &&
               (req.weight_mean_plane_bits == 0.0 ||
                (req.weights_bit_packed &&
                 req.weight_mean_plane_bits <=
                     static_cast<double>(kBasePrecision) + 2.0)));
  LOOM_EXPECTS(req.out_precision >= 1 && req.out_precision <= kBasePrecision);
  LOOM_EXPECTS(req.am_bits > 0 && req.wm_bits > 0);
  LOOM_EXPECTS(req.act_block_precision.empty() ||
               static_cast<std::int64_t>(req.act_block_precision.size()) ==
                   req.conv_groups * ceil_div(req.windows, req.window_quantum));

  TilePlan plan;

  // ---- Residency ----------------------------------------------------------
  const std::int64_t in_elements =
      req.conv_groups * req.group_in_channels * req.in_h * req.in_w;
  const std::int64_t out_elements =
      req.windows * req.conv_groups * req.group_out_channels;
  const std::int64_t act_total_bits = in_elements * req.act_precision +
                                      out_elements * req.out_precision;
  plan.acts_resident = act_total_bits <= req.am_bits;

  const std::int64_t group_weight_values =
      req.group_out_channels * req.inner_length;
  const std::int64_t weights_total_bits =
      req.conv_groups * weight_layout_bits(req, group_weight_values);
  plan.weights_resident = weights_total_bits <= req.wm_bits;

  // ---- Filter tiling ------------------------------------------------------
  const std::int64_t wm_budget =
      req.double_buffer ? std::max<std::int64_t>(1, req.wm_bits / 2)
                        : req.wm_bits;
  std::int64_t filter_tile;
  if (plan.weights_resident) {
    filter_tile = req.group_out_channels;
  } else {
    // Largest quantum multiple whose weights fit the (double-buffered) WM
    // budget; a single quantum that still spills is handled below by
    // cutting its weight stream into chunks.
    filter_tile = req.filter_quantum;
    while (filter_tile + req.filter_quantum <= req.group_out_channels &&
           weight_layout_bits(req, (filter_tile + req.filter_quantum) *
                                       req.inner_length) <= wm_budget) {
      filter_tile += req.filter_quantum;
    }
  }
  plan.filter_tiles = ceil_div(req.group_out_channels, filter_tile);

  // ---- Window tiling ------------------------------------------------------
  std::int64_t slab = ceil_div(req.windows, req.window_quantum) *
                      req.window_quantum;  // one slab covering everything
  if (!plan.acts_resident) {
    const std::int64_t am_budget =
        req.double_buffer ? std::max<std::int64_t>(1, req.am_bits / 2)
                          : req.am_bits;
    const std::int64_t ft_cap = std::min(filter_tile, req.group_out_channels);
    if (slabs_fit(req, slab, ft_cap, am_budget)) {
      // whole window axis fits the budget (only the totals spill)
    } else if (!slabs_fit(req, req.window_quantum, ft_cap, am_budget)) {
      // Fall back to single-buffered fills of the minimum slab; below the
      // full capacity the hardware cannot form a working set at all.
      LOOM_EXPECTS(slabs_fit(req, req.window_quantum, ft_cap, req.am_bits));
      slab = req.window_quantum;
    } else {
      // Binary search the largest fitting quantum multiple (monotone).
      std::int64_t lo = 1;  // in quanta; known to fit
      std::int64_t hi = ceil_div(req.windows, req.window_quantum);  // spills
      while (lo + 1 < hi) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        if (slabs_fit(req, mid * req.window_quantum, ft_cap, am_budget)) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      slab = lo * req.window_quantum;
    }
  }
  plan.window_tiles = ceil_div(req.windows, slab);

  // ---- Dataflow choice ----------------------------------------------------
  // Closed-form DRAM totals of both loop orders; pick the cheaper. Chunked
  // filter tiles can never stay weight-stationary (their stream exceeds the
  // WM), so they re-stream once per slab in either order.
  const bool spill = !plan.acts_resident;
  std::int64_t act_once = 0;
  for (int g = 0; g < req.conv_groups; ++g) {
    for (std::int64_t w0 = 0; w0 < req.windows; w0 += slab) {
      act_once += slab_fill_bits(req, g, w0, std::min(req.windows, w0 + slab));
    }
  }
  std::int64_t weights_once = 0;
  std::int64_t weights_ws = 0;  // weight traffic under weight-stationary
  for (std::int64_t f0 = 0; f0 < req.group_out_channels; f0 += filter_tile) {
    const std::int64_t values =
        (std::min(req.group_out_channels, f0 + filter_tile) - f0) *
        req.inner_length;
    const std::int64_t bits = weight_layout_bits(req, values);
    const bool chunked = !plan.weights_resident && bits > wm_budget;
    weights_once += bits;
    weights_ws += chunked ? bits * plan.window_tiles : bits;
  }
  weights_once *= req.conv_groups;
  weights_ws *= req.conv_groups;

  const std::int64_t ws_total =
      weights_ws + (spill ? plan.filter_tiles * act_once : 0);
  const std::int64_t as_total =
      (plan.weights_resident ? weights_once
                             : weights_once * plan.window_tiles) +
      (spill ? act_once : 0);
  plan.dataflow = ws_total <= as_total ? Dataflow::kWeightStationary
                                       : Dataflow::kActStationary;

  // ---- Tile emission (execution order) ------------------------------------
  const auto emit = [&](int g, std::int64_t w0, std::int64_t f0,
                        bool first_slab_of_block, bool fill_act) {
    const std::int64_t w1 = std::min(req.windows, w0 + slab);
    const std::int64_t f1 =
        std::min(req.group_out_channels, f0 + filter_tile);
    const std::int64_t values = (f1 - f0) * req.inner_length;
    const std::int64_t block_bits = weight_layout_bits(req, values);
    const bool chunked = !plan.weights_resident && block_bits > wm_budget;
    const std::int64_t max_values = max_weight_values_for(req, wm_budget);
    const int chunks =
        chunked ? static_cast<int>(ceil_div(values, max_values)) : 1;
    const std::int64_t base = values / chunks;
    const std::int64_t rem = values % chunks;

    for (int c = 0; c < chunks; ++c) {
      TileExtent t;
      t.conv_group = g;
      t.window_begin = w0;
      t.window_end = w1;
      t.filter_begin = f0;
      t.filter_end = f1;
      t.chunk = c;
      t.chunk_count = chunks;
      t.weight_values = base + (c < rem ? 1 : 0);
      t.weight_footprint_bits =
          chunked ? chunk_layout_bits(req, t.weight_values, wm_budget)
                  : block_bits;
      t.act_footprint_bits = slab_footprint_bits(req, w0, w1, f1 - f0);
      // Weights: chunked streams refill on every slab pass; resident blocks
      // only on their first.
      if (chunked || first_slab_of_block) {
        t.weight_fill_bits = t.weight_footprint_bits;
      }
      if (spill && c == 0 && fill_act) {
        t.act_fill_bits = slab_fill_bits(req, g, w0, w1);
      }
      if (spill && c == chunks - 1) {
        t.out_drain_bits = (w1 - w0) * (f1 - f0) * req.out_precision;
      }
      plan.act_fill_bits += t.act_fill_bits;
      plan.weight_fill_bits += t.weight_fill_bits;
      plan.out_drain_bits += t.out_drain_bits;
      plan.tiles.push_back(t);
    }
  };

  plan.tiles.reserve(static_cast<std::size_t>(
      req.conv_groups * plan.filter_tiles * plan.window_tiles));
  if (plan.dataflow == Dataflow::kWeightStationary) {
    for (int g = 0; g < req.conv_groups; ++g) {
      for (std::int64_t f0 = 0; f0 < req.group_out_channels;
           f0 += filter_tile) {
        bool first_slab = true;
        for (std::int64_t w0 = 0; w0 < req.windows; w0 += slab) {
          // Weight-stationary refetches the slab for every filter pass.
          emit(g, w0, f0, first_slab, /*fill_act=*/true);
          first_slab = false;
        }
      }
    }
  } else {
    bool first_slab = true;
    for (std::int64_t w0 = 0; w0 < req.windows; w0 += slab) {
      for (int g = 0; g < req.conv_groups; ++g) {
        bool first_block_of_group = true;
        for (std::int64_t f0 = 0; f0 < req.group_out_channels;
             f0 += filter_tile) {
          // Act-stationary fills each slab slice once; weights restream per
          // slab unless the whole layer's weights are WM-resident.
          const bool fill_w = !plan.weights_resident || first_slab;
          emit(g, w0, f0, fill_w, first_block_of_group);
          first_block_of_group = false;
        }
      }
      first_slab = false;
    }
  }
  return plan;
}

}  // namespace loom::mem
