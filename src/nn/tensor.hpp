// Dense row-major integer tensors used by the functional (golden) execution
// path and the synthetic workload generators. The simulators themselves
// mostly stream values and never materialize full weight tensors.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/bitops.hpp"

namespace loom::nn {

/// Tensor shape: up to a handful of dimensions, row-major layout.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  [[nodiscard]] int rank() const noexcept { return static_cast<int>(dims_.size()); }
  [[nodiscard]] std::int64_t dim(int i) const;
  [[nodiscard]] std::int64_t elements() const noexcept;
  [[nodiscard]] const std::vector<std::int64_t>& dims() const noexcept { return dims_; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Shape&, const Shape&) = default;

 private:
  std::vector<std::int64_t> dims_;
};

/// Dense tensor of 16-bit fixed-point values (the paper's base precision).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, Value fill = 0);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t elements() const noexcept { return static_cast<std::int64_t>(data_.size()); }

  [[nodiscard]] Value& at(std::span<const std::int64_t> idx);
  [[nodiscard]] Value at(std::span<const std::int64_t> idx) const;

  /// Convenience accessors for the common ranks.
  [[nodiscard]] Value& at3(std::int64_t c, std::int64_t h, std::int64_t w);
  [[nodiscard]] Value at3(std::int64_t c, std::int64_t h, std::int64_t w) const;
  [[nodiscard]] Value& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  [[nodiscard]] Value at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  [[nodiscard]] std::span<Value> data() noexcept { return data_; }
  [[nodiscard]] std::span<const Value> data() const noexcept { return data_; }

  /// Flat element access (row-major order).
  [[nodiscard]] Value flat(std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }
  void set_flat(std::int64_t i, Value v) { data_[static_cast<std::size_t>(i)] = v; }

  /// Maximum needed precision over all elements (signed or unsigned view).
  [[nodiscard]] int max_precision_signed() const noexcept;
  [[nodiscard]] int max_precision_unsigned() const noexcept;

  /// Exact equality: same shape and byte-identical elements. The batched
  /// execution paths are pinned against solo runs with this.
  friend bool operator==(const Tensor&, const Tensor&) = default;

 private:
  [[nodiscard]] std::int64_t offset(std::span<const std::int64_t> idx) const;

  Shape shape_;
  std::vector<Value> data_;
};

/// Wide-accumulator tensor for exact inner products before requantization.
class WideTensor {
 public:
  WideTensor() = default;
  explicit WideTensor(Shape shape, Wide fill = 0);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t elements() const noexcept { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] Wide flat(std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }
  void set_flat(std::int64_t i, Wide v) { data_[static_cast<std::size_t>(i)] = v; }
  [[nodiscard]] Wide& at3(std::int64_t c, std::int64_t h, std::int64_t w);
  [[nodiscard]] Wide at3(std::int64_t c, std::int64_t h, std::int64_t w) const;
  [[nodiscard]] std::span<Wide> data() noexcept { return data_; }
  [[nodiscard]] std::span<const Wide> data() const noexcept { return data_; }

  /// Exact equality: same shape and byte-identical accumulators.
  friend bool operator==(const WideTensor&, const WideTensor&) = default;

 private:
  Shape shape_;
  std::vector<Wide> data_;
};

}  // namespace loom::nn
