#include "nn/reference.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"

namespace loom::nn {

WideTensor conv_forward(const Tensor& input, const Tensor& weights,
                        const Layer& layer) {
  LOOM_EXPECTS(layer.kind == LayerKind::kConv);
  LOOM_EXPECTS(input.shape() == (Shape{layer.in.c, layer.in.h, layer.in.w}));
  LOOM_EXPECTS(weights.elements() == layer.weight_count());

  const std::int64_t cig = layer.group_in_channels();
  const std::int64_t cog = layer.group_out_channels();
  const std::int64_t kh = layer.kernel_h;
  const std::int64_t kw = layer.kernel_w;

  WideTensor out(Shape{layer.out.c, layer.out.h, layer.out.w});
  for (std::int64_t co = 0; co < layer.out.c; ++co) {
    const std::int64_t g = co / cog;
    const std::int64_t ci0 = g * cig;
    const std::int64_t wbase = co * cig * kh * kw;
    for (std::int64_t oy = 0; oy < layer.out.h; ++oy) {
      for (std::int64_t ox = 0; ox < layer.out.w; ++ox) {
        Wide acc = 0;
        for (std::int64_t ci = 0; ci < cig; ++ci) {
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = oy * layer.stride + ky - layer.pad;
            if (iy < 0 || iy >= layer.in.h) continue;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = ox * layer.stride + kx - layer.pad;
              if (ix < 0 || ix >= layer.in.w) continue;
              const Wide a = input.at3(ci0 + ci, iy, ix);
              const Wide w = weights.flat(wbase + (ci * kh + ky) * kw + kx);
              acc += a * w;
            }
          }
        }
        out.at3(co, oy, ox) = acc;
      }
    }
  }
  return out;
}

WideTensor fc_forward(const Tensor& input, const Tensor& weights,
                      const Layer& layer) {
  LOOM_EXPECTS(layer.kind == LayerKind::kFullyConnected);
  LOOM_EXPECTS(input.elements() == layer.in.elements());
  LOOM_EXPECTS(weights.elements() == layer.weight_count());

  const std::int64_t ci = layer.in.elements();
  WideTensor out(Shape{layer.out.c, 1, 1});
  for (std::int64_t co = 0; co < layer.out.c; ++co) {
    Wide acc = 0;
    const std::int64_t wbase = co * ci;
    for (std::int64_t i = 0; i < ci; ++i) {
      acc += static_cast<Wide>(input.flat(i)) * weights.flat(wbase + i);
    }
    out.set_flat(co, acc);
  }
  return out;
}

Tensor pool_forward(const Tensor& input, const Layer& layer) {
  LOOM_EXPECTS(layer.kind == LayerKind::kPool);
  LOOM_EXPECTS(input.shape() == (Shape{layer.in.c, layer.in.h, layer.in.w}));

  Tensor out(Shape{layer.out.c, layer.out.h, layer.out.w});
  for (std::int64_t c = 0; c < layer.out.c; ++c) {
    for (std::int64_t oy = 0; oy < layer.out.h; ++oy) {
      for (std::int64_t ox = 0; ox < layer.out.w; ++ox) {
        Wide acc = layer.pool == PoolKind::kMax
                       ? std::numeric_limits<Value>::min()
                       : 0;
        std::int64_t n = 0;
        for (std::int64_t ky = 0; ky < layer.kernel_h; ++ky) {
          const std::int64_t iy = oy * layer.stride + ky - layer.pad;
          if (iy < 0 || iy >= layer.in.h) continue;
          for (std::int64_t kx = 0; kx < layer.kernel_w; ++kx) {
            const std::int64_t ix = ox * layer.stride + kx - layer.pad;
            if (ix < 0 || ix >= layer.in.w) continue;
            const Value v = input.at3(c, iy, ix);
            if (layer.pool == PoolKind::kMax) {
              acc = std::max<Wide>(acc, v);
            } else {
              acc += v;
            }
            ++n;
          }
        }
        if (layer.pool == PoolKind::kAvg && n > 0) acc /= n;
        out.at3(c, oy, ox) = static_cast<Value>(acc);
      }
    }
  }
  return out;
}

Tensor requantize(const WideTensor& acc, int shift, int out_bits, bool relu) {
  LOOM_EXPECTS(shift >= 0 && out_bits >= 1 && out_bits <= kBasePrecision);
  Tensor out(acc.shape());
  const std::int64_t n = acc.elements();
  for (std::int64_t i = 0; i < n; ++i) {
    Wide v = acc.flat(i) >> shift;
    if (relu && v < 0) v = 0;
    out.set_flat(i, static_cast<Value>(saturate_signed(v, out_bits)));
  }
  return out;
}

int choose_requant_shift(const WideTensor& acc, int out_bits) {
  LOOM_EXPECTS(out_bits >= 1 && out_bits <= kBasePrecision);
  Wide peak = 0;
  for (std::int64_t i = 0; i < acc.elements(); ++i) {
    peak = std::max<Wide>(peak, std::abs(acc.flat(i)));
  }
  int shift = 0;
  const Wide limit = (Wide{1} << (out_bits - 1)) - 1;
  while ((peak >> shift) > limit) ++shift;
  return shift;
}

}  // namespace loom::nn
