#include "nn/network.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace loom::nn {

Network::Network(std::string name, Shape3 input)
    : name_(std::move(name)), input_(input), current_(input) {
  LOOM_EXPECTS(input.c > 0 && input.h > 0 && input.w > 0);
}

Layer& Network::add_conv(const std::string& name, int out_channels, int kernel,
                         int stride, int pad, int groups) {
  layers_.push_back(
      make_conv(name, current_, out_channels, kernel, stride, pad, groups));
  current_ = layers_.back().out;
  return layers_.back();
}

Layer& Network::add_conv_branch(const std::string& name, Shape3 in,
                                int out_channels, int kernel, int stride,
                                int pad) {
  layers_.push_back(make_conv(name, in, out_channels, kernel, stride, pad));
  return layers_.back();
}

Layer& Network::add_fc(const std::string& name, int out_features) {
  layers_.push_back(make_fc(name, current_, out_features));
  current_ = layers_.back().out;
  return layers_.back();
}

Layer& Network::add_pool(const std::string& name, PoolKind pool, int kernel,
                         int stride, int pad) {
  layers_.push_back(make_pool(name, current_, pool, kernel, stride, pad));
  current_ = layers_.back().out;
  return layers_.back();
}

const Layer& Network::layer(std::size_t i) const {
  LOOM_EXPECTS(i < layers_.size());
  return layers_[i];
}

std::vector<std::size_t> Network::conv_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].kind == LayerKind::kConv) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Network::fc_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].kind == LayerKind::kFullyConnected) out.push_back(i);
  }
  return out;
}

int Network::conv_precision_groups() const {
  int max_group = -1;
  for (const Layer& l : layers_) {
    if (l.kind == LayerKind::kConv) max_group = std::max(max_group, l.precision_group);
  }
  return max_group + 1;
}

std::int64_t Network::conv_macs() const {
  std::int64_t n = 0;
  for (const Layer& l : layers_) {
    if (l.kind == LayerKind::kConv) n += l.macs();
  }
  return n;
}

std::int64_t Network::fc_macs() const {
  std::int64_t n = 0;
  for (const Layer& l : layers_) {
    if (l.kind == LayerKind::kFullyConnected) n += l.macs();
  }
  return n;
}

std::int64_t Network::total_macs() const { return conv_macs() + fc_macs(); }

std::int64_t Network::total_weights() const {
  std::int64_t n = 0;
  for (const Layer& l : layers_) n += l.weight_count();
  return n;
}

std::int64_t Network::peak_activation_values() const {
  std::int64_t peak = 0;
  for (const Layer& l : layers_) {
    if (!l.has_weights()) continue;
    peak = std::max(peak, l.in.elements() + l.out.elements());
  }
  return peak;
}

}  // namespace loom::nn
