// Shared im2col index mapping for convolution windows. The workload
// group-precision scans, the functional DPNN engine and the OR-plane
// builder all need the same (window, flat) -> input-element mapping with
// zero-padding semantics; keeping one definition here stops the index math
// from drifting apart between them.
#pragma once

#include <cstdint>

#include "nn/layer.hpp"

namespace loom::nn {

/// Flat input-tensor index (CHW row-major) of inner-product element `flat`
/// of sliding window `window` in conv group `g`, or -1 when the position
/// falls into the zero padding. `flat` enumerates [ci][ky][kx] within the
/// group, `window` enumerates [oy][ox].
[[nodiscard]] inline std::int64_t im2col_input_index(const Layer& layer,
                                                     std::int64_t g,
                                                     std::int64_t window,
                                                     std::int64_t flat) noexcept {
  const std::int64_t kh = layer.kernel_h;
  const std::int64_t kw = layer.kernel_w;
  const std::int64_t oy = window / layer.out.w;
  const std::int64_t ox = window % layer.out.w;
  const std::int64_t ci = flat / (kh * kw);
  const std::int64_t rem = flat % (kh * kw);
  const std::int64_t ky = rem / kw;
  const std::int64_t kx = rem % kw;
  const std::int64_t iy = oy * layer.stride + ky - layer.pad;
  const std::int64_t ix = ox * layer.stride + kx - layer.pad;
  if (iy < 0 || iy >= layer.in.h || ix < 0 || ix >= layer.in.w) return -1;
  const std::int64_t c = g * layer.group_in_channels() + ci;
  return (c * layer.in.h + iy) * layer.in.w + ix;
}

}  // namespace loom::nn
