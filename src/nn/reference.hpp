// Golden bit-parallel reference execution. This is the semantic ground
// truth: the bit-serial datapath (arch/sip) and both simulators' functional
// modes are validated against these exact integer results.
#pragma once

#include "nn/layer.hpp"
#include "nn/tensor.hpp"

namespace loom::nn {

/// Exact integer convolution. `input` is CHW, `weights` is flat
/// [Co][Ci/g][Kh][Kw]; zero padding; supports grouped convolution.
[[nodiscard]] WideTensor conv_forward(const Tensor& input, const Tensor& weights,
                                      const Layer& layer);

/// Exact integer fully-connected layer. `weights` is flat [Co][Ci].
[[nodiscard]] WideTensor fc_forward(const Tensor& input, const Tensor& weights,
                                    const Layer& layer);

/// Max/average pooling on quantized activations.
[[nodiscard]] Tensor pool_forward(const Tensor& input, const Layer& layer);

/// Requantize wide accumulators back to `out_bits` fixed point: arithmetic
/// right shift by `shift`, optional ReLU, then signed saturation. This
/// models the activation functional unit at ABout's output.
[[nodiscard]] Tensor requantize(const WideTensor& acc, int shift, int out_bits,
                                bool relu);

/// Pick a right-shift that brings the accumulator range of `acc` into
/// `out_bits` signed bits (profile-style rescaling used by the examples).
[[nodiscard]] int choose_requant_shift(const WideTensor& acc, int out_bits);

}  // namespace loom::nn
