// Synthetic, deterministic workload generation.
//
// We do not have the paper's trained ImageNet models, so tensor *values* are
// synthesized from calibrated distributions (see quant/calibration.hpp) that
// reproduce the published precision behaviour: the per-layer needed
// precision equals the Table 1 profile, and the per-group effective
// precisions (what the dynamic-precision hardware detects at runtime) match
// the reductions the paper reports. All values derive from a counter-based
// RNG keyed by (seed, stream, index), so weight tensors with 10^8 elements
// are streamed rather than stored.
#pragma once

#include <cstdint>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "nn/layer.hpp"
#include "nn/tensor.hpp"

namespace loom::nn {

/// Distribution of synthetic fixed-point values.
///
/// magnitude = floor(max_magnitude * u^alpha) for u ~ U[0,1); larger alpha
/// concentrates values toward zero, lowering the *group* effective precision
/// while keeping the per-tensor maximum at the profile precision (with high
/// probability for realistic tensor sizes).
struct SyntheticSpec {
  int precision = 8;          ///< needed bits: unsigned for activations, two's-complement (incl. sign) for weights
  double alpha = 1.0;         ///< concentration exponent (>= 1)
  bool is_signed = false;     ///< weights are signed, post-ReLU activations are not
  double zero_fraction = 0.0; ///< extra probability mass at exactly zero (ReLU sparsity)
};

/// Streams deterministic values: element `index` is a pure function of
/// (seed, stream, index, spec).
class SyntheticSource {
 public:
  SyntheticSource(std::uint64_t seed, std::uint64_t stream, SyntheticSpec spec);

  [[nodiscard]] Value at(std::uint64_t index) const noexcept;
  [[nodiscard]] const SyntheticSpec& spec() const noexcept { return spec_; }

  /// Uniform draw behind element `index`, or -1.0 when the zero-gate fires
  /// (the element is exactly zero). The draw depends only on (seed, stream,
  /// index, zero_fraction) — not on alpha — and `at(index)` equals
  /// `sign * magnitude_for_draw(uniform_draw(index))`.
  [[nodiscard]] double uniform_draw(std::uint64_t index) const noexcept;

  /// Magnitude the source emits for uniform draw `u` under the current
  /// spec (monotone non-decreasing in `u`; -1.0 maps to 0). The OR-plane
  /// calibration fast path exploits this monotonicity: a detection group's
  /// precision for *any* alpha is the magnitude of its maximum draw.
  [[nodiscard]] Value magnitude_for_draw(double u) const noexcept;

  /// Largest magnitude the source can emit.
  [[nodiscard]] int max_magnitude() const noexcept { return max_magnitude_; }

 private:
  CounterRng rng_;
  SyntheticSpec spec_;
  int max_magnitude_;
};

/// Materialize an activation volume (CHW) from a synthetic source.
[[nodiscard]] Tensor make_activation_tensor(const Shape3& shape, const SyntheticSpec& spec,
                                            std::uint64_t seed, std::uint64_t stream);

/// Materialize a weight tensor with `count` elements (flat layout; the
/// caller interprets [Co][Ci/g][Kh][Kw] or [Co][Ci] ordering).
[[nodiscard]] Tensor make_weight_tensor(std::int64_t count, const SyntheticSpec& spec,
                                        std::uint64_t seed, std::uint64_t stream);

/// Stable stream ids so every consumer of a layer's data sees the same
/// virtual tensor.
[[nodiscard]] std::uint64_t activation_stream(std::uint64_t layer_index) noexcept;
[[nodiscard]] std::uint64_t weight_stream(std::uint64_t layer_index) noexcept;

}  // namespace loom::nn
