#include "nn/synthetic.hpp"

#include <cmath>

#include "common/error.hpp"

namespace loom::nn {

SyntheticSource::SyntheticSource(std::uint64_t seed, std::uint64_t stream,
                                 SyntheticSpec spec)
    : rng_(seed, stream), spec_(spec) {
  LOOM_EXPECTS(spec.precision >= 1 && spec.precision <= kBasePrecision);
  LOOM_EXPECTS(spec.alpha >= 1.0);
  LOOM_EXPECTS(spec.zero_fraction >= 0.0 && spec.zero_fraction < 1.0);
  // Signed precision p covers magnitudes up to 2^(p-1)-1 (we avoid the
  // asymmetric minimum so negation in the datapath cannot overflow).
  max_magnitude_ = spec.is_signed ? (1 << (spec.precision - 1)) - 1
                                  : (1 << spec.precision) - 1;
  if (spec_.is_signed && max_magnitude_ == 0) max_magnitude_ = 1;  // p==1 -> {-1,0,1}? keep {0,1}
}

Value SyntheticSource::at(std::uint64_t index) const noexcept {
  const std::uint64_t raw = rng_.bits(index);
  // Derive uniform, sign and zero-gate from independent bit fields.
  const double u = static_cast<double>(raw >> 11) * 0x1.0p-53;
  const bool negative = spec_.is_signed && ((raw & 1u) != 0);
  const double zgate = static_cast<double>((raw >> 1) & 0x3FF) * 0x1.0p-10;
  if (zgate < spec_.zero_fraction) return 0;

  const std::int32_t mag = magnitude_for_draw(u);
  return static_cast<Value>(negative ? -mag : mag);
}

double SyntheticSource::uniform_draw(std::uint64_t index) const noexcept {
  const std::uint64_t raw = rng_.bits(index);
  const double zgate = static_cast<double>((raw >> 1) & 0x3FF) * 0x1.0p-10;
  if (zgate < spec_.zero_fraction) return -1.0;
  return static_cast<double>(raw >> 11) * 0x1.0p-53;
}

Value SyntheticSource::magnitude_for_draw(double u) const noexcept {
  if (u < 0.0) return 0;
  const double scaled =
      static_cast<double>(max_magnitude_ + 1) * std::pow(u, spec_.alpha);
  auto mag = static_cast<std::int32_t>(scaled);
  if (mag > max_magnitude_) mag = max_magnitude_;
  return static_cast<Value>(mag);
}

Tensor make_activation_tensor(const Shape3& shape, const SyntheticSpec& spec,
                              std::uint64_t seed, std::uint64_t stream) {
  const SyntheticSource src(seed, stream, spec);
  Tensor t(Shape{shape.c, shape.h, shape.w});
  const std::int64_t n = t.elements();
  for (std::int64_t i = 0; i < n; ++i) {
    t.set_flat(i, src.at(static_cast<std::uint64_t>(i)));
  }
  return t;
}

Tensor make_weight_tensor(std::int64_t count, const SyntheticSpec& spec,
                          std::uint64_t seed, std::uint64_t stream) {
  LOOM_EXPECTS(count > 0);
  const SyntheticSource src(seed, stream, spec);
  Tensor t(Shape{count});
  for (std::int64_t i = 0; i < count; ++i) {
    t.set_flat(i, src.at(static_cast<std::uint64_t>(i)));
  }
  return t;
}

std::uint64_t activation_stream(std::uint64_t layer_index) noexcept {
  return 0x4143540000000000ull ^ layer_index;  // "ACT"
}

std::uint64_t weight_stream(std::uint64_t layer_index) noexcept {
  return 0x5747540000000000ull ^ layer_index;  // "WGT"
}

}  // namespace loom::nn
