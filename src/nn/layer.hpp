// Layer descriptors with shape inference and work accounting. These carry
// everything the simulators need: geometry, per-layer precision profile,
// and the precision-group id used by networks whose published profiles
// group several convolutions (GoogLeNet's inception modules).
#pragma once

#include <cstdint>
#include <string>

namespace loom::nn {

/// Channel-height-width extent of an activation volume.
struct Shape3 {
  std::int64_t c = 0;
  std::int64_t h = 0;
  std::int64_t w = 0;

  [[nodiscard]] std::int64_t elements() const noexcept { return c * h * w; }
  friend bool operator==(const Shape3&, const Shape3&) = default;
};

enum class LayerKind { kConv, kFullyConnected, kPool };
enum class PoolKind { kMax, kAvg };

/// One network layer. Conv and FC layers carry weights and are simulated on
/// the accelerators; pooling layers only reshape activations (both DPNN and
/// Loom have dedicated max units, so pooling adds no modeled compute time,
/// matching the paper's treatment).
struct Layer {
  LayerKind kind = LayerKind::kConv;
  std::string name;

  Shape3 in;   // input activation volume
  Shape3 out;  // output activation volume (from shape inference)

  // Convolution / pooling geometry.
  int kernel_h = 1;
  int kernel_w = 1;
  int stride = 1;
  int pad = 0;
  int groups = 1;  // grouped convolution (AlexNet conv2/4/5)
  PoolKind pool = PoolKind::kMax;

  // Precision profile, filled in from quant::PrecisionProfile.
  int act_precision = 16;     // Pa: profile-derived input activation bits
  int weight_precision = 16;  // Pw: profile-derived weight bits

  /// Index into the published per-network activation precision list. Layers
  /// sharing an index share a profile entry (GoogLeNet inception modules).
  int precision_group = -1;

  // ---- Derived quantities -------------------------------------------------

  /// Channels per convolution group (= in.c for groups == 1).
  [[nodiscard]] std::int64_t group_in_channels() const noexcept {
    return in.c / groups;
  }
  [[nodiscard]] std::int64_t group_out_channels() const noexcept {
    return out.c / groups;
  }

  /// Number of weights (conv: Co * Ci/g * Kh * Kw; FC: Co * Ci).
  [[nodiscard]] std::int64_t weight_count() const noexcept;

  /// Multiply-accumulate operations for one inference pass.
  [[nodiscard]] std::int64_t macs() const noexcept;

  /// Number of sliding windows (conv: out.h * out.w; FC: 1).
  [[nodiscard]] std::int64_t windows() const noexcept;

  /// Inner-product length per output (conv: Kh*Kw*Ci/g; FC: Ci).
  [[nodiscard]] std::int64_t inner_length() const noexcept;

  [[nodiscard]] bool has_weights() const noexcept { return kind != LayerKind::kPool; }
};

/// Factory helpers performing shape inference from an input volume.
[[nodiscard]] Layer make_conv(std::string name, Shape3 in, int out_channels,
                              int kernel, int stride, int pad, int groups = 1);
[[nodiscard]] Layer make_fc(std::string name, Shape3 in, int out_features);
/// `ceil_mode` selects Caffe-style ceiling output arithmetic (the framework
/// the paper's networks were profiled in).
[[nodiscard]] Layer make_pool(std::string name, Shape3 in, PoolKind pool,
                              int kernel, int stride, int pad = 0,
                              bool ceil_mode = true);

/// Conv/pool output extent: floor or ceil mode.
[[nodiscard]] std::int64_t conv_out_extent(std::int64_t in, int kernel, int stride,
                                           int pad, bool ceil_mode);

}  // namespace loom::nn
