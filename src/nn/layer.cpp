#include "nn/layer.hpp"

#include "common/error.hpp"

namespace loom::nn {

std::int64_t conv_out_extent(std::int64_t in, int kernel, int stride, int pad,
                             bool ceil_mode) {
  LOOM_EXPECTS(in > 0 && kernel > 0 && stride > 0 && pad >= 0);
  const std::int64_t span = in + 2 * pad - kernel;
  LOOM_EXPECTS(span >= 0);
  if (ceil_mode) return (span + stride - 1) / stride + 1;
  return span / stride + 1;
}

std::int64_t Layer::weight_count() const noexcept {
  if (kind == LayerKind::kPool) return 0;
  if (kind == LayerKind::kFullyConnected) return out.c * in.elements();
  return out.c * group_in_channels() * kernel_h * kernel_w;
}

std::int64_t Layer::macs() const noexcept {
  if (kind == LayerKind::kPool) return 0;
  if (kind == LayerKind::kFullyConnected) return out.c * in.elements();
  return out.c * out.h * out.w * group_in_channels() * kernel_h * kernel_w;
}

std::int64_t Layer::windows() const noexcept {
  if (kind == LayerKind::kConv) return out.h * out.w;
  return 1;
}

std::int64_t Layer::inner_length() const noexcept {
  if (kind == LayerKind::kPool) return 0;
  if (kind == LayerKind::kFullyConnected) return in.elements();
  return group_in_channels() * kernel_h * kernel_w;
}

Layer make_conv(std::string name, Shape3 in, int out_channels, int kernel,
                int stride, int pad, int groups) {
  LOOM_EXPECTS(out_channels > 0 && kernel > 0 && stride > 0 && groups > 0);
  LOOM_EXPECTS(in.c % groups == 0 && out_channels % groups == 0);
  Layer l;
  l.kind = LayerKind::kConv;
  l.name = std::move(name);
  l.in = in;
  l.kernel_h = l.kernel_w = kernel;
  l.stride = stride;
  l.pad = pad;
  l.groups = groups;
  l.out = Shape3{out_channels,
                 conv_out_extent(in.h, kernel, stride, pad, /*ceil_mode=*/false),
                 conv_out_extent(in.w, kernel, stride, pad, /*ceil_mode=*/false)};
  return l;
}

Layer make_fc(std::string name, Shape3 in, int out_features) {
  LOOM_EXPECTS(out_features > 0 && in.elements() > 0);
  Layer l;
  l.kind = LayerKind::kFullyConnected;
  l.name = std::move(name);
  l.in = in;
  l.out = Shape3{out_features, 1, 1};
  return l;
}

Layer make_pool(std::string name, Shape3 in, PoolKind pool, int kernel,
                int stride, int pad, bool ceil_mode) {
  LOOM_EXPECTS(kernel > 0 && stride > 0);
  Layer l;
  l.kind = LayerKind::kPool;
  l.name = std::move(name);
  l.in = in;
  l.pool = pool;
  l.kernel_h = l.kernel_w = kernel;
  l.stride = stride;
  l.pad = pad;
  l.out = Shape3{in.c, conv_out_extent(in.h, kernel, stride, pad, ceil_mode),
                 conv_out_extent(in.w, kernel, stride, pad, ceil_mode)};
  return l;
}

}  // namespace loom::nn
