#include "nn/zoo/zoo.hpp"

#include "common/error.hpp"

namespace loom::nn::zoo {

const std::vector<std::string>& paper_networks() {
  static const std::vector<std::string> names = {
      "nin", "alexnet", "googlenet", "vggs", "vggm", "vgg19"};
  return names;
}

Network make(const std::string& name) {
  if (name == "alexnet") return make_alexnet();
  if (name == "nin") return make_nin();
  if (name == "googlenet") return make_googlenet();
  if (name == "vggs") return make_vggs();
  if (name == "vggm") return make_vggm();
  if (name == "vgg19") return make_vgg19();
  throw ConfigError("unknown zoo network: " + name);
}

}  // namespace loom::nn::zoo
