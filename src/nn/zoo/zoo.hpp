// Model zoo: the six image-classification CNNs the paper evaluates, built
// with their published geometries. Each conv layer is tagged with a
// `precision_group` matching the corresponding entry of the paper's Table 1
// activation-precision list (GoogLeNet's 57 convolutions collapse into 11
// groups: conv1, conv2(reduce+3x3), and the nine inception modules).
#pragma once

#include <string>
#include <vector>

#include "nn/network.hpp"

namespace loom::nn::zoo {

[[nodiscard]] Network make_alexnet();
[[nodiscard]] Network make_nin();
[[nodiscard]] Network make_googlenet();
[[nodiscard]] Network make_vggs();
[[nodiscard]] Network make_vggm();
[[nodiscard]] Network make_vgg19();

/// Names of the networks the paper evaluates, in the paper's table order.
[[nodiscard]] const std::vector<std::string>& paper_networks();

/// Build a zoo network by name ("nin", "alexnet", "googlenet", "vggs",
/// "vggm", "vgg19"); throws ConfigError for unknown names.
[[nodiscard]] Network make(const std::string& name);

}  // namespace loom::nn::zoo
