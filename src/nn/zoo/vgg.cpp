// The three VGG-family networks the paper evaluates:
//  * VGG-S and VGG-M: Chatfield et al.'s "Return of the Devil" CNN-S/CNN-M
//    (five convolutions, three fully-connected layers).
//  * VGG-19: Simonyan & Zisserman configuration E (sixteen convolutions,
//    three fully-connected layers).
#include "nn/zoo/zoo.hpp"

namespace loom::nn::zoo {

Network make_vggs() {
  Network net("vggs", Shape3{3, 224, 224});
  net.add_conv("conv1", 96, 7, 2, 0).precision_group = 0;
  net.add_pool("pool1", PoolKind::kMax, 3, 3);
  net.add_conv("conv2", 256, 5, 1, 1).precision_group = 1;
  net.add_pool("pool2", PoolKind::kMax, 2, 2);
  net.add_conv("conv3", 512, 3, 1, 1).precision_group = 2;
  net.add_conv("conv4", 512, 3, 1, 1).precision_group = 3;
  net.add_conv("conv5", 512, 3, 1, 1).precision_group = 4;
  net.add_pool("pool5", PoolKind::kMax, 3, 3);
  net.add_fc("fc6", 4096);
  net.add_fc("fc7", 4096);
  net.add_fc("fc8", 1000);
  return net;
}

Network make_vggm() {
  Network net("vggm", Shape3{3, 224, 224});
  net.add_conv("conv1", 96, 7, 2, 0).precision_group = 0;
  net.add_pool("pool1", PoolKind::kMax, 3, 2);
  net.add_conv("conv2", 256, 5, 2, 1).precision_group = 1;
  net.add_pool("pool2", PoolKind::kMax, 3, 2);
  net.add_conv("conv3", 512, 3, 1, 1).precision_group = 2;
  net.add_conv("conv4", 512, 3, 1, 1).precision_group = 3;
  net.add_conv("conv5", 512, 3, 1, 1).precision_group = 4;
  net.add_pool("pool5", PoolKind::kMax, 3, 2);
  net.add_fc("fc6", 4096);
  net.add_fc("fc7", 4096);
  net.add_fc("fc8", 1000);
  return net;
}

Network make_vgg19() {
  Network net("vgg19", Shape3{3, 224, 224});
  int g = 0;
  auto block = [&](int count, int channels, const std::string& prefix) {
    for (int i = 1; i <= count; ++i) {
      net.add_conv(prefix + "_" + std::to_string(i), channels, 3, 1, 1)
          .precision_group = g++;
    }
    net.add_pool("pool_" + prefix, PoolKind::kMax, 2, 2);
  };
  block(2, 64, "conv1");
  block(2, 128, "conv2");
  block(4, 256, "conv3");
  block(4, 512, "conv4");
  block(4, 512, "conv5");
  net.add_fc("fc6", 4096);
  net.add_fc("fc7", 4096);
  net.add_fc("fc8", 1000);
  return net;
}

}  // namespace loom::nn::zoo
