// GoogLeNet (Szegedy et al.): stem convolutions plus nine inception
// modules and one fully-connected classifier. Branch convolutions are
// flattened into individual layers that read the module input volume;
// every layer of a module shares one precision group, matching the
// 11-entry activation-precision profile of the paper's Table 1
// (conv1, conv2, and modules 3a-5b).
#include "nn/zoo/zoo.hpp"

namespace loom::nn::zoo {

namespace {

/// Appends one inception module reading `in`; returns the output volume.
/// Branches: 1x1; 1x1 reduce -> 3x3; 1x1 reduce -> 5x5; pool -> 1x1 proj.
Shape3 add_inception(Network& net, const std::string& name, Shape3 in, int group,
                     int c1, int c3r, int c3, int c5r, int c5, int cp) {
  net.add_conv_branch(name + "/1x1", in, c1, 1, 1, 0).precision_group = group;
  net.add_conv_branch(name + "/3x3_reduce", in, c3r, 1, 1, 0).precision_group = group;
  const Shape3 r3{c3r, in.h, in.w};
  net.add_conv_branch(name + "/3x3", r3, c3, 3, 1, 1).precision_group = group;
  net.add_conv_branch(name + "/5x5_reduce", in, c5r, 1, 1, 0).precision_group = group;
  const Shape3 r5{c5r, in.h, in.w};
  net.add_conv_branch(name + "/5x5", r5, c5, 5, 1, 2).precision_group = group;
  net.add_conv_branch(name + "/pool_proj", in, cp, 1, 1, 0).precision_group = group;
  const Shape3 out{c1 + c3 + c5 + cp, in.h, in.w};
  net.set_current(out);
  return out;
}

}  // namespace

Network make_googlenet() {
  Network net("googlenet", Shape3{3, 224, 224});
  net.add_conv("conv1/7x7_s2", 64, 7, 2, 3).precision_group = 0;
  net.add_pool("pool1", PoolKind::kMax, 3, 2);
  net.add_conv("conv2/3x3_reduce", 64, 1, 1, 0).precision_group = 1;
  net.add_conv("conv2/3x3", 192, 3, 1, 1).precision_group = 1;
  net.add_pool("pool2", PoolKind::kMax, 3, 2);

  Shape3 v = net.current();  // 192 x 28 x 28
  v = add_inception(net, "inception_3a", v, 2, 64, 96, 128, 16, 32, 32);
  v = add_inception(net, "inception_3b", v, 3, 128, 128, 192, 32, 96, 64);
  v = Shape3{v.c, (v.h - 3 + 1) / 2 + 1, (v.w - 3 + 1) / 2 + 1};  // maxpool 3/2 ceil
  net.set_current(v);
  v = add_inception(net, "inception_4a", v, 4, 192, 96, 208, 16, 48, 64);
  v = add_inception(net, "inception_4b", v, 5, 160, 112, 224, 24, 64, 64);
  v = add_inception(net, "inception_4c", v, 6, 128, 128, 256, 24, 64, 64);
  v = add_inception(net, "inception_4d", v, 7, 112, 144, 288, 32, 64, 64);
  v = add_inception(net, "inception_4e", v, 8, 256, 160, 320, 32, 128, 128);
  v = Shape3{v.c, (v.h - 3 + 1) / 2 + 1, (v.w - 3 + 1) / 2 + 1};
  net.set_current(v);
  v = add_inception(net, "inception_5a", v, 9, 256, 160, 320, 32, 128, 128);
  v = add_inception(net, "inception_5b", v, 10, 384, 192, 384, 48, 128, 128);

  // Global average pool to 1x1 then the single classifier FCL.
  net.set_current(Shape3{v.c, 1, 1});
  net.add_fc("loss3/classifier", 1000);
  return net;
}

}  // namespace loom::nn::zoo
