// AlexNet (Krizhevsky et al., Caffe bvlc_alexnet geometry): five
// convolutions (conv2/4/5 grouped) and three fully-connected layers.
#include "nn/zoo/zoo.hpp"

namespace loom::nn::zoo {

Network make_alexnet() {
  Network net("alexnet", Shape3{3, 227, 227});
  net.add_conv("conv1", 96, /*kernel=*/11, /*stride=*/4, /*pad=*/0).precision_group = 0;
  net.add_pool("pool1", PoolKind::kMax, 3, 2);
  net.add_conv("conv2", 256, 5, 1, 2, /*groups=*/2).precision_group = 1;
  net.add_pool("pool2", PoolKind::kMax, 3, 2);
  net.add_conv("conv3", 384, 3, 1, 1).precision_group = 2;
  net.add_conv("conv4", 384, 3, 1, 1, /*groups=*/2).precision_group = 3;
  net.add_conv("conv5", 256, 3, 1, 1, /*groups=*/2).precision_group = 4;
  net.add_pool("pool5", PoolKind::kMax, 3, 2);
  net.add_fc("fc6", 4096);
  net.add_fc("fc7", 4096);
  net.add_fc("fc8", 1000);
  return net;
}

}  // namespace loom::nn::zoo
