// Network-in-Network (Lin et al., ImageNet variant): twelve convolutions
// (four spatial convs each followed by two 1x1 "cccp" layers); no
// fully-connected layers — classification happens via the final 1x1 conv
// and global average pooling, which is why the paper's FCL tables list NiN
// as n/a.
#include "nn/zoo/zoo.hpp"

namespace loom::nn::zoo {

Network make_nin() {
  Network net("nin", Shape3{3, 224, 224});
  int g = 0;
  net.add_conv("conv1", 96, 11, 4, 0).precision_group = g++;
  net.add_conv("cccp1", 96, 1, 1, 0).precision_group = g++;
  net.add_conv("cccp2", 96, 1, 1, 0).precision_group = g++;
  net.add_pool("pool1", PoolKind::kMax, 3, 2);
  net.add_conv("conv2", 256, 5, 1, 2).precision_group = g++;
  net.add_conv("cccp3", 256, 1, 1, 0).precision_group = g++;
  net.add_conv("cccp4", 256, 1, 1, 0).precision_group = g++;
  net.add_pool("pool2", PoolKind::kMax, 3, 2);
  net.add_conv("conv3", 384, 3, 1, 1).precision_group = g++;
  net.add_conv("cccp5", 384, 1, 1, 0).precision_group = g++;
  net.add_conv("cccp6", 384, 1, 1, 0).precision_group = g++;
  net.add_pool("pool3", PoolKind::kMax, 3, 2);
  net.add_conv("conv4", 1024, 3, 1, 1).precision_group = g++;
  net.add_conv("cccp7", 1024, 1, 1, 0).precision_group = g++;
  net.add_conv("cccp8", 1000, 1, 1, 0).precision_group = g++;
  net.add_pool("pool4", PoolKind::kAvg, 6, 1);
  return net;
}

}  // namespace loom::nn::zoo
