// A network is an ordered list of layers with chained shape inference plus
// the bookkeeping the simulators need (weighted layer indices, precision
// groups). Branching topologies (inception modules) are flattened: each
// branch convolution appears as its own layer whose input volume is the
// module input, which is exactly what the cycle model needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace loom::nn {

class Network {
 public:
  Network(std::string name, Shape3 input);

  /// Append a conv layer consuming the current output volume.
  Layer& add_conv(const std::string& name, int out_channels, int kernel,
                  int stride = 1, int pad = 0, int groups = 1);

  /// Append a conv layer with an explicit input volume (inception branches
  /// that all read the same module input). Does not advance the current
  /// volume; call `set_current` to continue from the concatenated output.
  Layer& add_conv_branch(const std::string& name, Shape3 in, int out_channels,
                         int kernel, int stride = 1, int pad = 0);

  Layer& add_fc(const std::string& name, int out_features);
  Layer& add_pool(const std::string& name, PoolKind pool, int kernel,
                  int stride, int pad = 0);

  /// Override the current activation volume (after a flattened module).
  void set_current(Shape3 v) { current_ = v; }
  [[nodiscard]] Shape3 current() const noexcept { return current_; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Shape3 input() const noexcept { return input_; }

  [[nodiscard]] const std::vector<Layer>& layers() const noexcept { return layers_; }
  [[nodiscard]] std::vector<Layer>& layers() noexcept { return layers_; }
  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }
  [[nodiscard]] const Layer& layer(std::size_t i) const;

  /// Indices of conv / fully-connected layers, in order.
  [[nodiscard]] std::vector<std::size_t> conv_indices() const;
  [[nodiscard]] std::vector<std::size_t> fc_indices() const;

  /// Number of distinct activation-precision groups (= profile entries).
  [[nodiscard]] int conv_precision_groups() const;

  /// Total MACs over conv / fc / all weighted layers.
  [[nodiscard]] std::int64_t conv_macs() const;
  [[nodiscard]] std::int64_t fc_macs() const;
  [[nodiscard]] std::int64_t total_macs() const;

  /// Total weight count over all weighted layers.
  [[nodiscard]] std::int64_t total_weights() const;

  /// Largest input+output activation footprint of any weighted layer,
  /// in values (drives the on-chip activation-memory sizing of §4.5).
  [[nodiscard]] std::int64_t peak_activation_values() const;

 private:
  std::string name_;
  Shape3 input_;
  Shape3 current_;
  std::vector<Layer> layers_;
};

}  // namespace loom::nn
