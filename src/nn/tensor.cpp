#include "nn/tensor.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace loom::nn {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (const auto d : dims_) LOOM_EXPECTS(d >= 0);
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (const auto d : dims_) LOOM_EXPECTS(d >= 0);
}

std::int64_t Shape::dim(int i) const {
  LOOM_EXPECTS(i >= 0 && i < rank());
  return dims_[static_cast<std::size_t>(i)];
}

std::int64_t Shape::elements() const noexcept {
  std::int64_t n = 1;
  for (const auto d : dims_) n *= d;
  return dims_.empty() ? 0 : n;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << 'x';
    out << dims_[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape, Value fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.elements()), fill) {}

std::int64_t Tensor::offset(std::span<const std::int64_t> idx) const {
  LOOM_EXPECTS(static_cast<int>(idx.size()) == shape_.rank());
  std::int64_t off = 0;
  for (int i = 0; i < shape_.rank(); ++i) {
    LOOM_EXPECTS(idx[static_cast<std::size_t>(i)] >= 0 &&
                 idx[static_cast<std::size_t>(i)] < shape_.dim(i));
    off = off * shape_.dim(i) + idx[static_cast<std::size_t>(i)];
  }
  return off;
}

Value& Tensor::at(std::span<const std::int64_t> idx) {
  return data_[static_cast<std::size_t>(offset(idx))];
}

Value Tensor::at(std::span<const std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(offset(idx))];
}

Value& Tensor::at3(std::int64_t c, std::int64_t h, std::int64_t w) {
  const std::int64_t idx[] = {c, h, w};
  return at(idx);
}

Value Tensor::at3(std::int64_t c, std::int64_t h, std::int64_t w) const {
  const std::int64_t idx[] = {c, h, w};
  return at(idx);
}

Value& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
  const std::int64_t idx[] = {n, c, h, w};
  return at(idx);
}

Value Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
  const std::int64_t idx[] = {n, c, h, w};
  return at(idx);
}

int Tensor::max_precision_signed() const noexcept {
  int p = 1;
  for (const Value v : data_) p = std::max(p, needed_bits_signed(v));
  return p;
}

int Tensor::max_precision_unsigned() const noexcept {
  int p = 1;
  for (const Value v : data_) {
    p = std::max(p, needed_bits_unsigned(static_cast<std::uint16_t>(v)));
  }
  return p;
}

WideTensor::WideTensor(Shape shape, Wide fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.elements()), fill) {}

Wide& WideTensor::at3(std::int64_t c, std::int64_t h, std::int64_t w) {
  LOOM_EXPECTS(shape_.rank() == 3);
  const std::int64_t off = (c * shape_.dim(1) + h) * shape_.dim(2) + w;
  return data_[static_cast<std::size_t>(off)];
}

Wide WideTensor::at3(std::int64_t c, std::int64_t h, std::int64_t w) const {
  LOOM_EXPECTS(shape_.rank() == 3);
  const std::int64_t off = (c * shape_.dim(1) + h) * shape_.dim(2) + w;
  return data_[static_cast<std::size_t>(off)];
}

}  // namespace loom::nn
