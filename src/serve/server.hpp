// Batched inference serving over the bit-sliced functional engine, with an
// overload-resilience layer: admission control, priority classes, deadlines,
// load shedding and graceful degradation.
//
// The Loom SIP grid amortizes bit-serial work across 64 concurrent windows
// per machine word, but a single small image (or an FC tail, whose window
// count is 1) leaves most of those lanes empty. The InferenceServer fills
// them *across requests*: concurrent submissions for the same
// (network, profile) pair coalesce into lane-packed batches that run
// through FunctionalLoomEngine::run_network_batch, where the im2col window
// ranges of different requests concatenate into the same 64-lane slabs and
// each request's outputs demux back out.
//
// Request lifecycle:
//   submit(model, input, {priority, deadline})
//     |  admission control: interactive blocks while the bounded queue is
//     |  full (backpressure) and may evict queued lower-priority work;
//     |  batch sheds (OverloadError) when the queue is full; best-effort
//     |  sheds when pressure crosses the shed watermark. try_submit bounds
//     |  the wait for every class. Admitted requests get a future.
//   dynamic batcher (worker thread)
//     |  picks the servable queue with the most urgent (class, arrival)
//     |  head, waits for lane fill up to `batch_deadline` (capped by any
//     |  per-request deadline) or `max_batch`, drops already-expired
//     |  requests (DeadlineExceededError), then pops the batch in
//     |  class-major FIFO order.
//   engine run with graceful degradation
//     |  a failed bit-sliced run retries with exponential backoff, then
//     |  falls back to the scalar-oracle engine (byte-identical outputs,
//     |  pinned by test); if that fails too the batch's futures fail
//     |  individually — the worker thread never crashes.
//   future resolves with InferenceResult (or DeadlineExceededError when the
//     |  result arrived after the request's deadline)
//
// Shutdown is drain-then-join: stop() (or the destructor) refuses new
// submissions with ShutdownError, workers finish every queued request, then
// exit. Submitters blocked on a full queue at shutdown get ShutdownError
// instead of deadlocking.
//
// Fault injection (serve/fault_injector.hpp) is compiled in always and
// disabled by default: ServeOptions::faults can make engine runs throw,
// batches stall and admission observe phantom queue pressure, all
// deterministically from a seed — the overload stress tests drive every
// degradation path through it.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "nn/tensor.hpp"
#include "serve/fault_injector.hpp"
#include "serve/model_registry.hpp"
#include "sim/functional.hpp"

namespace loom::serve {

/// Priority classes, highest first. Interactive work is never shed at
/// admission (it blocks, and may evict lower classes); batch work sheds
/// instead of blocking when the queue is full; best-effort work sheds as
/// soon as queue pressure crosses ServeOptions::shed_watermark.
enum class Priority : int { kInteractive = 0, kBatch = 1, kBestEffort = 2 };
inline constexpr int kPriorityClasses = 3;

[[nodiscard]] const char* priority_name(Priority p) noexcept;

/// Per-request submission options.
struct SubmitOptions {
  Priority priority = Priority::kInteractive;
  /// Relative deadline for the *result* (0 = none). Checked at admission
  /// (caps how long the batcher holds the request's batch open), at batch
  /// formation (expired requests are dropped without running) and at
  /// completion (late results resolve as DeadlineExceededError).
  std::chrono::nanoseconds deadline{0};
  /// Absolute deadline (steady clock; max() = none). The effective deadline
  /// is the earlier of this and the relative `deadline`. A submission whose
  /// absolute deadline has *already passed* is rejected immediately with
  /// DeadlineExceededError — counted under `rejected`, never queued — so a
  /// caller retrying across shards with a fixed budget cannot enqueue work
  /// that is guaranteed dead on arrival.
  std::chrono::steady_clock::time_point deadline_at =
      std::chrono::steady_clock::time_point::max();
};

struct ServeOptions {
  /// Most requests coalesced into one engine run (per model).
  int max_batch = 8;
  /// How long the batcher holds an underfull batch open for late arrivals.
  /// Zero flushes immediately (batches still form under bursty load).
  std::chrono::microseconds batch_deadline{200};
  /// Bound on requests pending across all models. Interactive submit()
  /// blocks (never drops) when the queue is full; lower classes shed.
  std::size_t queue_depth = 64;
  /// Queue-pressure fraction of `queue_depth` above which best-effort
  /// admissions shed with OverloadError instead of queueing.
  double shed_watermark = 0.75;
  /// Executor threads, each with its own functional engine. The engines'
  /// (group, slab) fan-out additionally uses the shared pool per
  /// `engine.jobs`.
  int workers = 1;
  /// Bit-sliced engine re-attempts after a failed run, with exponential
  /// backoff, before falling back to the scalar oracle.
  int engine_retries = 1;
  /// Backoff before the first retry; doubles per subsequent retry.
  std::chrono::microseconds retry_backoff{100};
  /// Per-worker functional engine configuration.
  sim::FunctionalOptions engine;
  /// Deterministic fault injection (disabled by default — all
  /// probabilities zero).
  FaultPlan faults;
};

/// What a resolved request future carries.
struct InferenceResult {
  nn::Tensor output;               ///< byte-identical to a solo run_network
  int batch_size = 0;              ///< requests that shared the engine run
  std::uint64_t batch_cycles = 0;  ///< modeled grid cycles of that run
  std::chrono::nanoseconds queue_wait{0};  ///< submit -> batch formation
  std::chrono::nanoseconds run_time{0};    ///< engine wall clock of the batch
  Priority priority = Priority::kInteractive;
  /// True when the batch ran on the scalar-oracle fallback engine after the
  /// bit-sliced attempts failed (outputs are byte-identical either way).
  bool via_fallback = false;
  /// Engine runs attempted for the batch (1 = first try succeeded).
  int engine_attempts = 1;
  /// Index of the shard that served the request when routed through a
  /// ShardRouter; -1 for direct InferenceServer submissions.
  int shard = -1;
};

/// Cheap queue observability, read without taking the server mutex. The
/// three fields are lock-free mirrors published *after* each queue
/// transition commits under the internal lock, so a reader may observe
/// values up to one transition stale, and the fields are individually —
/// not mutually — consistent (depth may reflect a newer transition than
/// oldest_age). That staleness contract is fine for the router's health
/// scoring, which this accessor exists for; use stats() when exact,
/// mutually consistent accounting is required.
struct QueueSnapshot {
  std::size_t depth = 0;  ///< requests pending across all model queues
  /// Age of the oldest pending request (0 when the queue is empty).
  std::chrono::nanoseconds oldest_age{0};
  /// Requests popped into batches that have not resolved their futures yet.
  std::size_t inflight = 0;
};

/// Per-priority-class accounting. After a drain,
/// submitted == completed + shed + timed_out + failed; `rejected` requests
/// were refused at admission and never entered the queue.
struct ClassStats {
  std::uint64_t submitted = 0;  ///< admitted to the queue
  std::uint64_t rejected = 0;   ///< refused at admission and never queued
                                ///< (OverloadError shed, or
                                ///< DeadlineExceededError for a submission
                                ///< whose absolute deadline had already
                                ///< passed)
  std::uint64_t shed = 0;       ///< evicted from the queue for a
                                ///< higher-priority arrival
  std::uint64_t timed_out = 0;  ///< future resolved DeadlineExceededError
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;     ///< future resolved with another exception
  LatencyHistogram queue_wait_ns;  ///< submit -> batch formation, completed
  LatencyHistogram run_time_ns;    ///< engine wall clock, completed
  LatencyHistogram latency_ns;     ///< submit -> result, completed
};

/// Aggregate serving statistics (monotonic; snapshot under the server lock).
/// Scalar counters are sums over `by_class`.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t batches = 0;        ///< engine runs that formed
  std::uint64_t batch_requests = 0; ///< requests across formed batches
  std::uint64_t retries = 0;        ///< bit-sliced re-attempts
  std::uint64_t fallbacks = 0;      ///< batches degraded to the scalar oracle
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t peak_batch = 0;
  /// Layer runs per functional kernel ("scalar", "bitslice", "lut", ...):
  /// which backend actually served each weighted layer, fallback runs
  /// included — the observable trace of autotuner + degradation decisions.
  std::map<std::string, std::uint64_t> backend_layer_runs;
  /// Persistent-autotune counters (process-wide BackendAutotuner, sampled
  /// at stats() time — they cover every engine in the process, not just
  /// this server's): cells installed from LOOM_AUTOTUNE_CACHE, choose()
  /// calls answered by a cache-installed winner vs. not, and exploration
  /// measurements fed to undecided cells. A warm-cache process reports
  /// autotune_explore_records == 0.
  std::uint64_t autotune_cached_cells = 0;
  std::uint64_t autotune_hits = 0;
  std::uint64_t autotune_misses = 0;
  std::uint64_t autotune_explore_records = 0;
  std::array<ClassStats, kPriorityClasses> by_class;

  [[nodiscard]] const ClassStats& for_priority(Priority p) const {
    return by_class[static_cast<std::size_t>(p)];
  }

  /// Mean requests per engine run — the lane-fill the batcher achieved.
  [[nodiscard]] double mean_batch() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(batch_requests) /
                              static_cast<double>(batches);
  }

  /// Submit-to-result latency over completed requests of every class.
  [[nodiscard]] LatencyHistogram latency_all() const noexcept {
    LatencyHistogram h;
    for (const ClassStats& c : by_class) h.merge(c.latency_ns);
    return h;
  }
};

class InferenceServer {
 public:
  /// `models` must outlive the server. Worker threads start immediately.
  explicit InferenceServer(const ModelRegistry& models, ServeOptions opts = {});

  /// Drains and joins (stop()).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one request for `model`. Interactive requests block while the
  /// queue is full (after trying to evict queued lower-priority work);
  /// batch and best-effort requests throw OverloadError instead of
  /// blocking. Throws ShutdownError when the server is stopping and
  /// ConfigError for unknown models or input-shape mismatches.
  [[nodiscard]] std::future<InferenceResult> submit(const std::string& model,
                                                    nn::Tensor input,
                                                    SubmitOptions sopts = {});

  /// Same, for a model handle obtained from the registry (skips the name
  /// lookup; the handle does not need to be registered).
  [[nodiscard]] std::future<InferenceResult> submit(
      std::shared_ptr<const Model> model, nn::Tensor input,
      SubmitOptions sopts = {});

  /// Bounded-wait admission: like submit(), but waits at most `timeout`
  /// for the request to become admissible (queue space / pressure below
  /// the class watermark) and throws OverloadError when the wait expires.
  /// A zero timeout probes admission without waiting.
  [[nodiscard]] std::future<InferenceResult> try_submit(
      std::shared_ptr<const Model> model, nn::Tensor input,
      std::chrono::nanoseconds timeout, SubmitOptions sopts = {});

  /// Refuse new submissions, run every already-queued request to
  /// completion, join the workers. Idempotent.
  void stop();

  [[nodiscard]] ServerStats stats() const;
  /// Lock-free queue-pressure snapshot (see QueueSnapshot for the staleness
  /// contract). Safe to call at any rate from any thread.
  [[nodiscard]] QueueSnapshot queue_snapshot() const noexcept;
  [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }
  /// Injected-fault counters (all zero when ServeOptions::faults is
  /// disabled).
  [[nodiscard]] const FaultInjector& fault_injector() const noexcept {
    return injector_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::shared_ptr<const Model> model;
    nn::Tensor input;
    std::promise<InferenceResult> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline = Clock::time_point::max();  ///< absolute
    Priority priority = Priority::kInteractive;
    std::uint64_t sequence = 0;  ///< arrival order, for oldest-first pick

    [[nodiscard]] bool has_deadline() const noexcept {
      return deadline != Clock::time_point::max();
    }
  };

  /// Per-model queues, one FIFO per priority class. Keyed by Model pointer
  /// identity — one registry entry, one batching domain. `claimed` marks a
  /// queue some worker is forming a batch from (possibly holding it open
  /// for its deadline): other workers skip it and serve other models
  /// instead of camping on the same wait, and nobody but the claimer may
  /// erase the map node. Admission-control eviction may still remove
  /// requests from a claimed queue (the claimer re-checks under the lock).
  struct ModelQueue {
    std::array<std::deque<Pending>, kPriorityClasses> pending;
    bool claimed = false;

    [[nodiscard]] std::size_t size() const noexcept;
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }
    /// Highest-priority non-empty class (kPriorityClasses when empty).
    [[nodiscard]] int best_class() const noexcept;
    /// Earliest arrival over all classes (for the batch-deadline hold).
    [[nodiscard]] Clock::time_point earliest_enqueued() const noexcept;
    /// Earliest per-request deadline over all pending (max() when none).
    [[nodiscard]] Clock::time_point earliest_deadline() const noexcept;
  };

  void worker_loop();
  /// The unclaimed queue whose (best class, head arrival) key is most
  /// urgent (nullptr when nothing is servable by this worker right now).
  [[nodiscard]] ModelQueue* best_queue();
  /// Admission-control core shared by submit/try_submit. `bounded` waits
  /// until `admit_by`; unbounded interactive waits forever, unbounded
  /// lower classes shed immediately.
  [[nodiscard]] std::future<InferenceResult> enqueue(
      std::shared_ptr<const Model> model, nn::Tensor input,
      SubmitOptions sopts, bool bounded, Clock::time_point admit_by);
  /// Evict the newest queued request of the lowest class strictly below
  /// `incoming` (across all models) into `evicted`. Caller holds the lock.
  bool evict_lower_priority(Priority incoming, std::vector<Pending>& evicted);
  /// Move every expired request of `q` into `expired`, recording timeouts.
  /// Caller holds the lock.
  void sweep_expired(ModelQueue& q, Clock::time_point now,
                     std::vector<Pending>& expired);
  [[nodiscard]] std::size_t shed_threshold() const noexcept;
  /// Refresh the lock-free QueueSnapshot mirrors. Caller holds the lock.
  void publish_queue_snapshot() noexcept;

  const ModelRegistry& models_;
  ServeOptions opts_;
  FaultInjector injector_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< queues non-empty or stopping
  std::condition_variable space_cv_;  ///< queue depth dropped below bound
  std::unordered_map<const Model*, ModelQueue> queues_;
  std::size_t total_pending_ = 0;
  std::uint64_t next_sequence_ = 0;
  bool stopping_ = false;
  ServerStats stats_;

  /// Sentinel for "no pending request" in snap_oldest_ns_.
  static constexpr std::int64_t kNoOldest =
      std::numeric_limits<std::int64_t>::max();
  // Lock-free mirrors behind queue_snapshot(); written under mutex_ (except
  // the inflight decrement, which is a bare atomic sub after futures
  // resolve), read relaxed.
  std::atomic<std::size_t> snap_depth_{0};
  std::atomic<std::int64_t> snap_oldest_ns_{kNoOldest};
  std::atomic<std::size_t> snap_inflight_{0};

  std::once_flag join_once_;
  std::vector<std::thread> workers_;
};

}  // namespace loom::serve
