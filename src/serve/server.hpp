// Batched inference serving over the bit-sliced functional engine.
//
// The Loom SIP grid amortizes bit-serial work across 64 concurrent windows
// per machine word, but a single small image (or an FC tail, whose window
// count is 1) leaves most of those lanes empty. The InferenceServer fills
// them *across requests*: concurrent submissions for the same
// (network, profile) pair coalesce into lane-packed batches that run
// through FunctionalLoomEngine::run_network_batch, where the im2col window
// ranges of different requests concatenate into the same 64-lane slabs and
// each request's outputs demux back out.
//
// Request lifecycle:
//   submit(model, input)                   -- blocks while the bounded queue
//     |  is full (backpressure), then enqueues and returns a future
//   dynamic batcher (worker thread)        -- picks the model queue with the
//     |  oldest pending request, waits for lane fill up to `batch_deadline`
//     |  or `max_batch`, then pops the batch
//   engine run                             -- run_network_batch on the
//     |  worker's engine; outputs byte-identical to solo runs (pinned by
//     |  tests, not assumed)
//   future resolves with InferenceResult   -- per-request output + latency
//
// Shutdown is drain-then-join: stop() (or the destructor) refuses new
// submissions, workers finish every queued request, then exit. Submitters
// blocked on a full queue at shutdown get a ConfigError instead of
// deadlocking.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nn/tensor.hpp"
#include "serve/model_registry.hpp"
#include "sim/functional.hpp"

namespace loom::serve {

struct ServeOptions {
  /// Most requests coalesced into one engine run (per model).
  int max_batch = 8;
  /// How long the batcher holds an underfull batch open for late arrivals.
  /// Zero flushes immediately (batches still form under bursty load).
  std::chrono::microseconds batch_deadline{200};
  /// Bound on requests pending across all models; submit() blocks (never
  /// drops) when the queue is full.
  std::size_t queue_depth = 64;
  /// Executor threads, each with its own functional engine. The engines'
  /// (group, slab) fan-out additionally uses the shared pool per
  /// `engine.jobs`.
  int workers = 1;
  /// Per-worker functional engine configuration.
  sim::FunctionalOptions engine;
};

/// What a resolved request future carries.
struct InferenceResult {
  nn::Tensor output;               ///< byte-identical to a solo run_network
  int batch_size = 0;              ///< requests that shared the engine run
  std::uint64_t batch_cycles = 0;  ///< modeled grid cycles of that run
  std::chrono::nanoseconds queue_wait{0};  ///< submit -> batch formation
  std::chrono::nanoseconds run_time{0};    ///< engine wall clock of the batch
};

/// Aggregate serving statistics (monotonic; snapshot under the server lock).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;    ///< futures resolved with an exception
  std::uint64_t batches = 0;   ///< engine runs
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t peak_batch = 0;
  std::chrono::nanoseconds total_queue_wait{0};  ///< over completed requests
  std::chrono::nanoseconds total_run_time{0};    ///< over batches
  std::chrono::nanoseconds max_latency{0};       ///< queue wait + run time

  /// Mean requests per engine run — the lane-fill the batcher achieved.
  [[nodiscard]] double mean_batch() const noexcept {
    return batches == 0
               ? 0.0
               : static_cast<double>(completed + failed) /
                     static_cast<double>(batches);
  }
};

class InferenceServer {
 public:
  /// `models` must outlive the server. Worker threads start immediately.
  explicit InferenceServer(const ModelRegistry& models, ServeOptions opts = {});

  /// Drains and joins (stop()).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one request for `model`. Blocks while the queue is full.
  /// Throws ConfigError for unknown models or when the server is stopping.
  [[nodiscard]] std::future<InferenceResult> submit(const std::string& model,
                                                    nn::Tensor input);

  /// Same, for a model handle obtained from the registry (skips the name
  /// lookup; the handle does not need to be registered).
  [[nodiscard]] std::future<InferenceResult> submit(
      std::shared_ptr<const Model> model, nn::Tensor input);

  /// Refuse new submissions, run every already-queued request to
  /// completion, join the workers. Idempotent.
  void stop();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::shared_ptr<const Model> model;
    nn::Tensor input;
    std::promise<InferenceResult> promise;
    Clock::time_point enqueued;
    std::uint64_t sequence = 0;  ///< arrival order, for oldest-first pick
  };

  /// Per-model FIFO. Keyed by Model pointer identity — one registry entry,
  /// one batching domain. `claimed` marks a queue some worker is forming a
  /// batch from (possibly holding it open for its deadline): other workers
  /// skip it and serve other models instead of camping on the same wait,
  /// and nobody but the claimer may erase the map node.
  struct ModelQueue {
    std::deque<Pending> pending;
    bool claimed = false;
  };

  void worker_loop();
  /// The unclaimed queue whose head request arrived earliest (nullptr when
  /// nothing is servable by this worker right now).
  [[nodiscard]] ModelQueue* oldest_queue();

  const ModelRegistry& models_;
  ServeOptions opts_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< queues non-empty or stopping
  std::condition_variable space_cv_;  ///< queue depth dropped below bound
  std::unordered_map<const Model*, ModelQueue> queues_;
  std::size_t total_pending_ = 0;
  std::uint64_t next_sequence_ = 0;
  bool stopping_ = false;
  ServerStats stats_;

  std::once_flag join_once_;
  std::vector<std::thread> workers_;
};

}  // namespace loom::serve
