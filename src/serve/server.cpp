#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace loom::serve {

InferenceServer::InferenceServer(const ModelRegistry& models, ServeOptions opts)
    : models_(models), opts_(opts) {
  LOOM_EXPECTS(opts_.max_batch >= 1);
  LOOM_EXPECTS(opts_.queue_depth >= 1);
  LOOM_EXPECTS(opts_.workers >= 1);
  LOOM_EXPECTS(opts_.batch_deadline.count() >= 0);
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  try {
    for (int i = 0; i < opts_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    stop();
    throw;
  }
}

InferenceServer::~InferenceServer() { stop(); }

std::future<InferenceResult> InferenceServer::submit(const std::string& model,
                                                     nn::Tensor input) {
  return submit(models_.find(model), std::move(input));
}

std::future<InferenceResult> InferenceServer::submit(
    std::shared_ptr<const Model> model, nn::Tensor input) {
  LOOM_EXPECTS(model != nullptr);
  if (input.elements() != model->input_shape().elements()) {
    throw ConfigError("model '" + model->name + "' expects " +
                      std::to_string(model->input_shape().elements()) +
                      " input values, got " + std::to_string(input.elements()));
  }
  std::future<InferenceResult> fut;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Backpressure: block (never drop) until the bounded queue has room.
    space_cv_.wait(lock, [&] {
      return stopping_ || total_pending_ < opts_.queue_depth;
    });
    if (stopping_) {
      throw ConfigError("inference server is stopping; request rejected");
    }
    Pending p;
    p.model = std::move(model);
    p.input = std::move(input);
    p.enqueued = Clock::now();
    p.sequence = next_sequence_++;
    fut = p.promise.get_future();
    queues_[p.model.get()].pending.push_back(std::move(p));
    ++total_pending_;
    ++stats_.submitted;
    stats_.peak_queue_depth =
        std::max<std::uint64_t>(stats_.peak_queue_depth, total_pending_);
  }
  // notify_all, not notify_one: a worker holding an underfull batch open in
  // its deadline wait shares this CV, and its predicate stays false for
  // requests aimed at *other* models — a single notification could be
  // swallowed by it while an idle worker sleeps.
  work_cv_.notify_all();
  return fut;
}

void InferenceServer::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  std::call_once(join_once_, [this] {
    for (std::thread& w : workers_) w.join();
  });
}

ServerStats InferenceServer::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

InferenceServer::ModelQueue* InferenceServer::oldest_queue() {
  ModelQueue* best = nullptr;
  std::uint64_t best_seq = 0;
  for (auto& [model, q] : queues_) {
    if (q.claimed || q.pending.empty()) continue;
    const std::uint64_t seq = q.pending.front().sequence;
    if (best == nullptr || seq < best_seq) {
      best = &q;
      best_seq = seq;
    }
  }
  return best;
}

void InferenceServer::worker_loop() {
  // One engine per worker: engines carry dispatcher statistics and scratch
  // state, so they are confined to their thread; the bit-sliced fan-out
  // inside a run still stripes over the shared pool.
  sim::FunctionalLoomEngine engine(opts_.engine);
  const auto max_batch = static_cast<std::size_t>(opts_.max_batch);

  for (;;) {
    std::vector<Pending> batch;
    Clock::time_point popped;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Wake for work this worker can serve (claimed queues belong to the
      // worker holding them open) or for the drained-shutdown exit.
      work_cv_.wait(lock, [&] {
        return oldest_queue() != nullptr ||
               (stopping_ && total_pending_ == 0);
      });
      if (stopping_ && total_pending_ == 0) return;
      ModelQueue* q = oldest_queue();
      if (q == nullptr) continue;  // claimed remainder; its worker notifies

      // Dynamic batching: hold the batch open for late arrivals until the
      // head request's deadline, lane fill, or shutdown — whichever first.
      // The claim keeps other workers off this queue (they serve other
      // models meanwhile) and makes the map node ours to erase.
      q->claimed = true;
      if (opts_.batch_deadline.count() > 0 && !stopping_ &&
          q->pending.size() < max_batch) {
        const Clock::time_point deadline =
            q->pending.front().enqueued + opts_.batch_deadline;
        work_cv_.wait_until(lock, deadline, [&] {
          return stopping_ || q->pending.size() >= max_batch;
        });
      }

      const std::size_t n = std::min(q->pending.size(), max_batch);
      const Model* key = q->pending.front().model.get();
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(q->pending.front()));
        q->pending.pop_front();
      }
      total_pending_ -= n;
      popped = Clock::now();
      q->claimed = false;
      if (q->pending.empty()) {
        // Drop the node so ad-hoc (unregistered) models cannot grow the
        // map without bound; safe — the claim kept every other worker out.
        queues_.erase(key);
      }
    }
    // Other workers may now serve this model's remainder (or observe the
    // drained-shutdown state); producers may refill the freed queue slots.
    work_cv_.notify_all();
    space_cv_.notify_all();

    const auto n = batch.size();
    std::vector<nn::Tensor> inputs;
    inputs.reserve(n);
    for (Pending& p : batch) inputs.push_back(std::move(p.input));
    const Model& model = *batch.front().model;

    const Clock::time_point t0 = Clock::now();
    try {
      sim::FunctionalBatchNetworkRun run =
          engine.run_network_batch(model.net, inputs, model.weights);
      const Clock::time_point t1 = Clock::now();

      std::chrono::nanoseconds max_latency{0};
      std::chrono::nanoseconds total_wait{0};
      for (std::size_t i = 0; i < n; ++i) {
        const std::chrono::nanoseconds wait = popped - batch[i].enqueued;
        max_latency = std::max(max_latency, wait + (t1 - t0));
        total_wait += wait;
      }
      // Record stats *before* resolving the futures, so a caller that has
      // joined on every future observes completed == submitted.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        stats_.completed += n;
        ++stats_.batches;
        stats_.peak_batch = std::max<std::uint64_t>(stats_.peak_batch, n);
        stats_.total_queue_wait += total_wait;
        stats_.total_run_time += t1 - t0;
        stats_.max_latency = std::max(stats_.max_latency, max_latency);
      }
      for (std::size_t i = 0; i < n; ++i) {
        InferenceResult res;
        res.output = std::move(run.outputs[i]);
        res.batch_size = static_cast<int>(n);
        res.batch_cycles = run.total_cycles;
        res.queue_wait = popped - batch[i].enqueued;
        res.run_time = t1 - t0;
        batch[i].promise.set_value(std::move(res));
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        stats_.failed += n;
        ++stats_.batches;
      }
      for (Pending& p : batch) {
        p.promise.set_exception(std::current_exception());
      }
    }
  }
}

}  // namespace loom::serve
