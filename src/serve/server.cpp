#include "serve/server.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "sim/autotune_cache.hpp"
#include "sim/backend.hpp"

namespace loom::serve {

namespace {

/// Nanosecond count for a steady-clock duration (histogram sample).
[[nodiscard]] std::uint64_t ns_of(std::chrono::steady_clock::duration d) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d);
  return ns.count() < 0 ? 0 : static_cast<std::uint64_t>(ns.count());
}

}  // namespace

const char* priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
    case Priority::kBestEffort: return "best-effort";
  }
  return "?";
}

std::size_t InferenceServer::ModelQueue::size() const noexcept {
  std::size_t n = 0;
  for (const auto& dq : pending) n += dq.size();
  return n;
}

int InferenceServer::ModelQueue::best_class() const noexcept {
  for (int c = 0; c < kPriorityClasses; ++c) {
    if (!pending[static_cast<std::size_t>(c)].empty()) return c;
  }
  return kPriorityClasses;
}

InferenceServer::Clock::time_point
InferenceServer::ModelQueue::earliest_enqueued() const noexcept {
  Clock::time_point t = Clock::time_point::max();
  for (const auto& dq : pending) {
    if (!dq.empty()) t = std::min(t, dq.front().enqueued);
  }
  return t;
}

InferenceServer::Clock::time_point
InferenceServer::ModelQueue::earliest_deadline() const noexcept {
  Clock::time_point t = Clock::time_point::max();
  for (const auto& dq : pending) {
    for (const Pending& p : dq) t = std::min(t, p.deadline);
  }
  return t;
}

InferenceServer::InferenceServer(const ModelRegistry& models, ServeOptions opts)
    : models_(models), opts_(opts), injector_(opts.faults) {
  LOOM_EXPECTS(opts_.max_batch >= 1);
  LOOM_EXPECTS(opts_.queue_depth >= 1);
  LOOM_EXPECTS(opts_.workers >= 1);
  LOOM_EXPECTS(opts_.batch_deadline.count() >= 0);
  LOOM_EXPECTS(opts_.shed_watermark > 0.0 && opts_.shed_watermark <= 1.0);
  LOOM_EXPECTS(opts_.engine_retries >= 0);
  LOOM_EXPECTS(opts_.retry_backoff.count() >= 0);
  // Warm the process autotuner before workers spin up, so the first batch
  // already sees cached winners instead of exploring per-layer.
  sim::init_autotune_cache_from_env();
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  try {
    for (int i = 0; i < opts_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    stop();
    throw;
  }
}

InferenceServer::~InferenceServer() { stop(); }

std::size_t InferenceServer::shed_threshold() const noexcept {
  const auto mark = static_cast<std::size_t>(
      opts_.shed_watermark * static_cast<double>(opts_.queue_depth));
  return std::clamp<std::size_t>(mark, 1, opts_.queue_depth);
}

std::future<InferenceResult> InferenceServer::submit(const std::string& model,
                                                     nn::Tensor input,
                                                     SubmitOptions sopts) {
  return submit(models_.find(model), std::move(input), sopts);
}

std::future<InferenceResult> InferenceServer::submit(
    std::shared_ptr<const Model> model, nn::Tensor input, SubmitOptions sopts) {
  return enqueue(std::move(model), std::move(input), sopts, /*bounded=*/false,
                 Clock::time_point::max());
}

std::future<InferenceResult> InferenceServer::try_submit(
    std::shared_ptr<const Model> model, nn::Tensor input,
    std::chrono::nanoseconds timeout, SubmitOptions sopts) {
  LOOM_EXPECTS(timeout.count() >= 0);
  return enqueue(std::move(model), std::move(input), sopts, /*bounded=*/true,
                 Clock::now() + timeout);
}

bool InferenceServer::evict_lower_priority(Priority incoming,
                                           std::vector<Pending>& evicted) {
  for (int c = kPriorityClasses - 1; c > static_cast<int>(incoming); --c) {
    const auto cls = static_cast<std::size_t>(c);
    // The newest request of the lowest pending class across all models: the
    // work that would be shed last by arrival order but first by class.
    ModelQueue* victim_q = nullptr;
    const Model* victim_key = nullptr;
    std::uint64_t newest = 0;
    for (auto& [key, q] : queues_) {
      const auto& dq = q.pending[cls];
      if (dq.empty()) continue;
      if (victim_q == nullptr || dq.back().sequence > newest) {
        victim_q = &q;
        victim_key = key;
        newest = dq.back().sequence;
      }
    }
    if (victim_q == nullptr) continue;
    auto& dq = victim_q->pending[cls];
    evicted.push_back(std::move(dq.back()));
    dq.pop_back();
    --total_pending_;
    ++stats_.shed;
    ++stats_.by_class[cls].shed;
    if (victim_q->empty() && !victim_q->claimed) queues_.erase(victim_key);
    return true;
  }
  return false;
}

void InferenceServer::sweep_expired(ModelQueue& q, Clock::time_point now,
                                    std::vector<Pending>& expired) {
  for (std::size_t c = 0; c < static_cast<std::size_t>(kPriorityClasses); ++c) {
    auto& dq = q.pending[c];
    for (auto it = dq.begin(); it != dq.end();) {
      if (it->has_deadline() && it->deadline <= now) {
        ++stats_.timed_out;
        ++stats_.by_class[c].timed_out;
        expired.push_back(std::move(*it));
        it = dq.erase(it);
        --total_pending_;
      } else {
        ++it;
      }
    }
  }
}

std::future<InferenceResult> InferenceServer::enqueue(
    std::shared_ptr<const Model> model, nn::Tensor input, SubmitOptions sopts,
    bool bounded, Clock::time_point admit_by) {
  LOOM_EXPECTS(model != nullptr);
  LOOM_EXPECTS(sopts.deadline.count() >= 0);
  const auto cls = static_cast<std::size_t>(sopts.priority);
  LOOM_EXPECTS(cls < static_cast<std::size_t>(kPriorityClasses));
  if (input.elements() != model->input_shape().elements()) {
    throw ConfigError("model '" + model->name + "' expects " +
                      std::to_string(model->input_shape().elements()) +
                      " input values, got " + std::to_string(input.elements()));
  }
  // Dead-on-arrival fast path: an already-expired absolute deadline is
  // rejected before admission ever runs — the request is never queued, so
  // the drain invariant (submitted == completed + shed + timed_out +
  // failed) is untouched; the refusal lands in `rejected`.
  if (sopts.deadline_at <= Clock::now()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.rejected;
      ++stats_.by_class[cls].rejected;
    }
    throw DeadlineExceededError(
        std::string(priority_name(sopts.priority)) +
        " request rejected at admission: absolute deadline already expired");
  }

  std::vector<Pending> evicted;
  std::future<InferenceResult> fut;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t depth = opts_.queue_depth;
    // Best-effort admissions shed at the watermark; higher classes only at
    // a full queue.
    const std::size_t limit =
        sopts.priority == Priority::kBestEffort ? shed_threshold() : depth;
    const bool interactive = sopts.priority == Priority::kInteractive;
    for (;;) {
      if (stopping_) {
        throw ShutdownError("inference server is stopping; request rejected");
      }
      // A fault-injected pressure spike makes shed decisions observe
      // phantom pending work (sheds fire early). Interactive admission and
      // every blocking predicate use the physical occupancy, so injection
      // can delay but never permanently starve an admissible request.
      const std::size_t effective =
          interactive ? total_pending_
                      : total_pending_ + injector_.queue_spike();
      if (effective < limit) break;  // admissible
      // Physically full: shed the newest queued request of a strictly
      // lower class (its future gets OverloadError) and take its slot.
      if (total_pending_ >= depth &&
          evict_lower_priority(sopts.priority, evicted)) {
        break;
      }
      if (!bounded) {
        if (interactive) {
          // Blocking backpressure: interactive work is never shed.
          space_cv_.wait(lock,
                         [&] { return stopping_ || total_pending_ < depth; });
          continue;
        }
        ++stats_.rejected;
        ++stats_.by_class[cls].rejected;
        throw OverloadError(
            std::string(priority_name(sopts.priority)) +
            " request shed at admission: " + std::to_string(effective) +
            " pending >= " + std::to_string(limit) + " (queue depth " +
            std::to_string(depth) + ")");
      }
      // Bounded wait (try_submit): sleep until space frees or a short
      // re-poll slice elapses, then re-evaluate; spurious wakes are fine
      // because the loop re-checks everything, and the slice keeps a
      // spiked (phantom-pressure) decision from spinning hot.
      if (Clock::now() >= admit_by) {
        ++stats_.rejected;
        ++stats_.by_class[cls].rejected;
        throw OverloadError(std::string(priority_name(sopts.priority)) +
                            " request shed: try_submit admission wait "
                            "expired with " +
                            std::to_string(total_pending_) + " pending");
      }
      const Clock::time_point slice =
          std::min(admit_by, Clock::now() + std::chrono::milliseconds(1));
      (void)space_cv_.wait_until(lock, slice);
    }

    Pending p;
    p.model = std::move(model);
    p.input = std::move(input);
    p.enqueued = Clock::now();
    if (sopts.deadline.count() > 0) p.deadline = p.enqueued + sopts.deadline;
    p.deadline = std::min(p.deadline, sopts.deadline_at);
    p.priority = sopts.priority;
    p.sequence = next_sequence_++;
    fut = p.promise.get_future();
    queues_[p.model.get()].pending[cls].push_back(std::move(p));
    ++total_pending_;
    ++stats_.submitted;
    ++stats_.by_class[cls].submitted;
    stats_.peak_queue_depth =
        std::max<std::uint64_t>(stats_.peak_queue_depth, total_pending_);
    publish_queue_snapshot();
  }
  for (Pending& v : evicted) {
    v.promise.set_exception(std::make_exception_ptr(OverloadError(
        std::string(priority_name(v.priority)) +
        " request shed: evicted from the queue for higher-priority work")));
  }
  // notify_all, not notify_one: a worker holding an underfull batch open in
  // its deadline wait shares this CV, and its predicate stays false for
  // requests aimed at *other* models — a single notification could be
  // swallowed by it while an idle worker sleeps.
  work_cv_.notify_all();
  return fut;
}

void InferenceServer::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  std::call_once(join_once_, [this] {
    for (std::thread& w : workers_) w.join();
  });
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s = stats_;
  }
  // Sampled outside mutex_: the autotuner has its own lock, and holding two
  // here invites ordering bugs for zero benefit.
  const auto tuner = sim::BackendAutotuner::instance().cache_stats();
  s.autotune_cached_cells = tuner.loaded_cells;
  s.autotune_hits = tuner.hits;
  s.autotune_misses = tuner.misses;
  s.autotune_explore_records = tuner.explore_records;
  return s;
}

void InferenceServer::publish_queue_snapshot() noexcept {
  snap_depth_.store(total_pending_, std::memory_order_relaxed);
  Clock::time_point oldest = Clock::time_point::max();
  for (const auto& [model, q] : queues_) {
    oldest = std::min(oldest, q.earliest_enqueued());
  }
  snap_oldest_ns_.store(
      oldest == Clock::time_point::max()
          ? kNoOldest
          : std::chrono::duration_cast<std::chrono::nanoseconds>(
                oldest.time_since_epoch())
                .count(),
      std::memory_order_relaxed);
}

QueueSnapshot InferenceServer::queue_snapshot() const noexcept {
  QueueSnapshot s;
  s.depth = snap_depth_.load(std::memory_order_relaxed);
  s.inflight = snap_inflight_.load(std::memory_order_relaxed);
  const std::int64_t oldest = snap_oldest_ns_.load(std::memory_order_relaxed);
  if (oldest != kNoOldest) {
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count();
    s.oldest_age = std::chrono::nanoseconds(std::max<std::int64_t>(0, now - oldest));
  }
  return s;
}

InferenceServer::ModelQueue* InferenceServer::best_queue() {
  ModelQueue* best = nullptr;
  int best_cls = kPriorityClasses;
  std::uint64_t best_seq = 0;
  for (auto& [model, q] : queues_) {
    if (q.claimed || q.empty()) continue;
    const int cls = q.best_class();
    const std::uint64_t seq =
        q.pending[static_cast<std::size_t>(cls)].front().sequence;
    if (best == nullptr || cls < best_cls ||
        (cls == best_cls && seq < best_seq)) {
      best = &q;
      best_cls = cls;
      best_seq = seq;
    }
  }
  return best;
}

void InferenceServer::worker_loop() {
  // One engine per worker: engines carry dispatcher statistics and scratch
  // state, so they are confined to their thread; the bit-sliced fan-out
  // inside a run still stripes over the shared pool. The fault injector's
  // engine-failure site rides the engine's pre-run hook, so injected
  // failures hit the primary attempts and retries but never the scalar
  // fallback below.
  sim::FunctionalOptions primary_opts = opts_.engine;
  if (injector_.plan().engine_failure_prob > 0.0) {
    primary_opts.pre_run_hook = [this] {
      if (injector_.should_fail_engine()) {
        throw TransientEngineError("injected engine fault");
      }
    };
  }
  sim::FunctionalLoomEngine engine(primary_opts);
  // Scalar-oracle fallback engine, built on first use: byte-identical
  // outputs to the bit-sliced path (pinned by test), hook-free.
  std::optional<sim::FunctionalLoomEngine> scalar;
  const auto scalar_engine = [&]() -> sim::FunctionalLoomEngine& {
    if (!scalar) {
      sim::FunctionalOptions so = opts_.engine;
      so.force_scalar = true;
      so.pre_run_hook = nullptr;
      scalar.emplace(so);
    }
    return *scalar;
  };
  const auto max_batch = static_cast<std::size_t>(opts_.max_batch);

  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    Clock::time_point popped;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Wake for work this worker can serve (claimed queues belong to the
      // worker holding them open) or for the drained-shutdown exit.
      work_cv_.wait(lock, [&] {
        return best_queue() != nullptr || (stopping_ && total_pending_ == 0);
      });
      if (stopping_ && total_pending_ == 0) return;
      ModelQueue* q = best_queue();
      if (q == nullptr) continue;  // claimed remainder; its worker notifies

      // Dynamic batching: hold the batch open for late arrivals until the
      // earliest request's batching deadline (capped by any per-request
      // completion deadline — holding past it would expire the request),
      // lane fill, or shutdown — whichever first. The claim keeps other
      // workers off this queue (they serve other models meanwhile) and
      // makes the map node ours to erase.
      q->claimed = true;
      if (opts_.batch_deadline.count() > 0 && !stopping_ &&
          q->size() < max_batch) {
        const Clock::time_point hold =
            std::min(q->earliest_enqueued() + opts_.batch_deadline,
                     q->earliest_deadline());
        work_cv_.wait_until(lock, hold, [&] {
          return stopping_ || q->size() >= max_batch;
        });
      }

      // Requests whose deadline already passed never run: their futures
      // resolve with DeadlineExceededError below, outside the lock.
      popped = Clock::now();
      sweep_expired(*q, popped, expired);

      // Pop in class-major FIFO order: interactive ahead of batch ahead of
      // best-effort, arrival order within a class.
      const std::size_t n = std::min(q->size(), max_batch);
      batch.reserve(n);
      for (auto& dq : q->pending) {
        while (batch.size() < n && !dq.empty()) {
          batch.push_back(std::move(dq.front()));
          dq.pop_front();
        }
      }
      total_pending_ -= batch.size();
      snap_inflight_.fetch_add(batch.size(), std::memory_order_relaxed);
      q->claimed = false;
      if (q->empty()) {
        // Drop the node so ad-hoc (unregistered) models cannot grow the
        // map without bound; safe — the claim kept every other worker out.
        // (The batch may be empty when every request expired or was
        // evicted, so find the key by node identity.)
        for (auto it = queues_.begin(); it != queues_.end(); ++it) {
          if (&it->second == q) {
            queues_.erase(it);
            break;
          }
        }
      }
      publish_queue_snapshot();
    }
    // Other workers may now serve this model's remainder (or observe the
    // drained-shutdown state); producers may refill the freed queue slots.
    work_cv_.notify_all();
    space_cv_.notify_all();

    for (Pending& p : expired) {
      p.promise.set_exception(std::make_exception_ptr(DeadlineExceededError(
          std::string(priority_name(p.priority)) +
          " request deadline expired before batch formation")));
    }
    if (batch.empty()) continue;

    // Injected batcher stall: pressure builds behind a slow worker.
    if (injector_.should_delay_batcher()) {
      std::this_thread::sleep_for(injector_.plan().batcher_delay);
    }

    const auto n = batch.size();
    std::vector<nn::Tensor> inputs;
    inputs.reserve(n);
    for (Pending& p : batch) inputs.push_back(std::move(p.input));
    const Model& model = *batch.front().model;

    // Graceful degradation: bit-sliced attempts with exponential backoff,
    // then the scalar oracle, then per-future failure. The worker itself
    // never dies on an engine error.
    const Clock::time_point t0 = Clock::now();
    sim::FunctionalBatchNetworkRun run;
    std::exception_ptr err;
    bool ok = false;
    bool via_fallback = false;
    bool fell_back = false;
    std::uint64_t retries = 0;
    int attempts = 0;
    for (int a = 0; a <= opts_.engine_retries && !ok; ++a) {
      if (a > 0) {
        ++retries;
        std::this_thread::sleep_for(opts_.retry_backoff * (1LL << (a - 1)));
      }
      ++attempts;
      try {
        run = engine.run_network_batch(model.net, inputs, model.weights);
        ok = true;
      } catch (...) {
        err = std::current_exception();
      }
    }
    if (!ok) {
      fell_back = true;
      ++attempts;
      try {
        if (injector_.should_fail_fallback()) {
          throw TransientEngineError("injected fallback-engine fault");
        }
        run = scalar_engine().run_network_batch(model.net, inputs,
                                                model.weights);
        ok = true;
        via_fallback = true;
      } catch (...) {
        err = std::current_exception();
      }
    }
    const Clock::time_point t1 = Clock::now();

    if (ok) {
      // A result delivered after its request's deadline is a timeout, not a
      // completion — the caller stopped waiting.
      std::vector<char> late(n, 0);
      // Record stats *before* resolving the futures, so a caller that has
      // joined on every future observes completed == submitted.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.batches;
        stats_.batch_requests += n;
        stats_.peak_batch = std::max<std::uint64_t>(stats_.peak_batch, n);
        stats_.retries += retries;
        if (fell_back) ++stats_.fallbacks;
        for (const sim::FunctionalBatchLayerRun& lr : run.layers) {
          ++stats_.backend_layer_runs[lr.backend];
        }
        for (std::size_t i = 0; i < n; ++i) {
          const auto c = static_cast<std::size_t>(batch[i].priority);
          if (batch[i].has_deadline() && batch[i].deadline <= t1) {
            late[i] = 1;
            ++stats_.timed_out;
            ++stats_.by_class[c].timed_out;
            continue;
          }
          ++stats_.completed;
          ++stats_.by_class[c].completed;
          stats_.by_class[c].queue_wait_ns.add(
              ns_of(popped - batch[i].enqueued));
          stats_.by_class[c].run_time_ns.add(ns_of(t1 - t0));
          stats_.by_class[c].latency_ns.add(ns_of(t1 - batch[i].enqueued));
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (late[i]) {
          batch[i].promise.set_exception(
              std::make_exception_ptr(DeadlineExceededError(
                  std::string(priority_name(batch[i].priority)) +
                  " request deadline expired before completion")));
          continue;
        }
        InferenceResult res;
        res.output = std::move(run.outputs[i]);
        res.batch_size = static_cast<int>(n);
        res.batch_cycles = run.total_cycles;
        res.queue_wait = popped - batch[i].enqueued;
        res.run_time = t1 - t0;
        res.priority = batch[i].priority;
        res.via_fallback = via_fallback;
        res.engine_attempts = attempts;
        batch[i].promise.set_value(std::move(res));
      }
    } else {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.batches;
        stats_.batch_requests += n;
        stats_.peak_batch = std::max<std::uint64_t>(stats_.peak_batch, n);
        stats_.retries += retries;
        ++stats_.fallbacks;
        stats_.failed += n;
        for (std::size_t i = 0; i < n; ++i) {
          ++stats_.by_class[static_cast<std::size_t>(batch[i].priority)]
                .failed;
        }
      }
      // Fail each request's future individually; the worker survives to
      // serve the next batch.
      for (Pending& p : batch) {
        p.promise.set_exception(err);
      }
    }
    snap_inflight_.fetch_sub(n, std::memory_order_relaxed);
  }
}

}  // namespace loom::serve
