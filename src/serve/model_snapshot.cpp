#include "serve/model_snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace loom::serve {

namespace {

// Section ids, in the exact order they must appear in the file.
enum SectionId : std::uint32_t {
  kName = 1,
  kNetwork = 2,
  kProfile = 3,
  kInputSpec = 4,
  kWeights = 5,
};
constexpr SectionId kSectionOrder[] = {kName, kNetwork, kProfile, kInputSpec,
                                       kWeights};
constexpr std::uint32_t kSectionCount = 5;

constexpr char kMagic[8] = {'L', 'O', 'O', 'M', 'S', 'N', 'A', 'P'};

// Decode-side sanity bounds: generous for any real model, tight enough that
// a corrupted length field cannot drive a pathological allocation.
constexpr std::uint64_t kMaxString = 1u << 16;
constexpr std::uint64_t kMaxLayers = 1u << 16;
constexpr std::uint64_t kMaxVector = 1u << 16;
constexpr std::uint64_t kMaxTensors = 1u << 16;
constexpr std::uint64_t kMaxRank = 8;

// ---- Little-endian encode into a growing byte buffer ----------------------

struct Writer {
  std::vector<std::uint8_t> out;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  }
  void u8(std::uint8_t v) { out.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    if (s.size() > kMaxString) {
      throw SnapshotError("string too long to snapshot: " +
                          std::to_string(s.size()) + " bytes");
    }
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void shape3(const nn::Shape3& s) {
    i64(s.c);
    i64(s.h);
    i64(s.w);
  }
};

// ---- Bounds-checked little-endian decode ----------------------------------

struct Reader {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const noexcept {
    return in.size() - pos;
  }
  void need(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw SnapshotError(std::string("snapshot truncated reading ") + what +
                          ": need " + std::to_string(n) + " bytes, have " +
                          std::to_string(remaining()));
    }
  }
  [[nodiscard]] std::uint8_t u8(const char* what) {
    need(1, what);
    return in[pos++];
  }
  [[nodiscard]] std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  [[nodiscard]] std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }
  [[nodiscard]] std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }
  [[nodiscard]] double f64(const char* what) {
    const std::uint64_t bits = u64(what);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string str(const char* what) {
    const std::uint64_t n = u64(what);
    if (n > kMaxString) {
      throw SnapshotError(std::string("snapshot string length for ") + what +
                          " out of range: " + std::to_string(n));
    }
    need(static_cast<std::size_t>(n), what);
    std::string s(reinterpret_cast<const char*>(in.data() + pos),
                  static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return s;
  }
  [[nodiscard]] nn::Shape3 shape3(const char* what) {
    nn::Shape3 s;
    s.c = i64(what);
    s.h = i64(what);
    s.w = i64(what);
    return s;
  }
};

[[nodiscard]] int bounded_int(Reader& r, const char* what, int lo, int hi) {
  const std::int32_t v = r.i32(what);
  if (v < lo || v > hi) {
    throw SnapshotError(std::string("snapshot field ") + what +
                        " out of range: " + std::to_string(v));
  }
  return static_cast<int>(v);
}

// ---- Section payloads ------------------------------------------------------

void encode_network(Writer& w, const nn::Network& net) {
  w.str(net.name());
  w.shape3(net.input());
  w.shape3(net.current());
  w.u64(net.size());
  for (const nn::Layer& l : net.layers()) {
    w.u32(static_cast<std::uint32_t>(l.kind));
    w.str(l.name);
    w.shape3(l.in);
    w.shape3(l.out);
    w.i32(l.kernel_h);
    w.i32(l.kernel_w);
    w.i32(l.stride);
    w.i32(l.pad);
    w.i32(l.groups);
    w.u32(static_cast<std::uint32_t>(l.pool));
    w.i32(l.act_precision);
    w.i32(l.weight_precision);
    w.i32(l.precision_group);
  }
}

[[nodiscard]] nn::Network decode_network(Reader& r) {
  const std::string name = r.str("network name");
  const nn::Shape3 input = r.shape3("network input");
  const nn::Shape3 current = r.shape3("network current");
  const std::uint64_t count = r.u64("layer count");
  if (count > kMaxLayers) {
    throw SnapshotError("snapshot layer count out of range: " +
                        std::to_string(count));
  }
  nn::Network net(name, input);
  for (std::uint64_t i = 0; i < count; ++i) {
    nn::Layer l;
    const std::uint32_t kind = r.u32("layer kind");
    if (kind > static_cast<std::uint32_t>(nn::LayerKind::kPool)) {
      throw SnapshotError("snapshot layer kind out of range: " +
                          std::to_string(kind));
    }
    l.kind = static_cast<nn::LayerKind>(kind);
    l.name = r.str("layer name");
    l.in = r.shape3("layer in");
    l.out = r.shape3("layer out");
    l.kernel_h = bounded_int(r, "kernel_h", 1, 1 << 14);
    l.kernel_w = bounded_int(r, "kernel_w", 1, 1 << 14);
    l.stride = bounded_int(r, "stride", 1, 1 << 14);
    l.pad = bounded_int(r, "pad", 0, 1 << 14);
    l.groups = bounded_int(r, "groups", 1, 1 << 14);
    const std::uint32_t pool = r.u32("pool kind");
    if (pool > static_cast<std::uint32_t>(nn::PoolKind::kAvg)) {
      throw SnapshotError("snapshot pool kind out of range: " +
                          std::to_string(pool));
    }
    l.pool = static_cast<nn::PoolKind>(pool);
    l.act_precision = bounded_int(r, "act_precision", 1, kBasePrecision);
    l.weight_precision = bounded_int(r, "weight_precision", 1, kBasePrecision);
    l.precision_group = bounded_int(r, "precision_group", -1, 1 << 20);
    if (l.in.c < 0 || l.in.h < 0 || l.in.w < 0 || l.out.c < 0 || l.out.h < 0 ||
        l.out.w < 0 || (l.in.c % l.groups) != 0 ||
        (l.kind == nn::LayerKind::kConv && (l.out.c % l.groups) != 0)) {
      throw SnapshotError("snapshot layer '" + l.name +
                          "' has inconsistent geometry");
    }
    net.layers().push_back(std::move(l));
  }
  net.set_current(current);
  return net;
}

void encode_profile(Writer& w, const quant::PrecisionProfile& p) {
  w.str(p.network);
  w.u32(static_cast<std::uint32_t>(p.target));
  w.u64(p.conv_act.size());
  for (const int v : p.conv_act) w.i32(v);
  w.i32(p.conv_weight);
  w.u64(p.fc_weight.size());
  for (const int v : p.fc_weight) w.i32(v);
  w.f64(p.dynamic_act_trim);
}

[[nodiscard]] quant::PrecisionProfile decode_profile(Reader& r) {
  quant::PrecisionProfile p;
  p.network = r.str("profile network");
  const std::uint32_t target = r.u32("profile target");
  if (target > static_cast<std::uint32_t>(quant::AccuracyTarget::k99)) {
    throw SnapshotError("snapshot accuracy target out of range: " +
                        std::to_string(target));
  }
  p.target = static_cast<quant::AccuracyTarget>(target);
  const std::uint64_t na = r.u64("conv_act count");
  if (na > kMaxVector) {
    throw SnapshotError("snapshot conv_act count out of range: " +
                        std::to_string(na));
  }
  p.conv_act.reserve(static_cast<std::size_t>(na));
  for (std::uint64_t i = 0; i < na; ++i) {
    p.conv_act.push_back(bounded_int(r, "conv_act", 1, kBasePrecision));
  }
  p.conv_weight = bounded_int(r, "conv_weight", 1, kBasePrecision);
  const std::uint64_t nf = r.u64("fc_weight count");
  if (nf > kMaxVector) {
    throw SnapshotError("snapshot fc_weight count out of range: " +
                        std::to_string(nf));
  }
  p.fc_weight.reserve(static_cast<std::size_t>(nf));
  for (std::uint64_t i = 0; i < nf; ++i) {
    p.fc_weight.push_back(bounded_int(r, "fc_weight", 1, kBasePrecision));
  }
  p.dynamic_act_trim = r.f64("dynamic_act_trim");
  return p;
}

void encode_input_spec(Writer& w, const nn::SyntheticSpec& s) {
  w.i32(s.precision);
  w.f64(s.alpha);
  w.u8(s.is_signed ? 1 : 0);
  w.f64(s.zero_fraction);
}

[[nodiscard]] nn::SyntheticSpec decode_input_spec(Reader& r) {
  nn::SyntheticSpec s;
  s.precision = bounded_int(r, "spec precision", 1, kBasePrecision);
  s.alpha = r.f64("spec alpha");
  const std::uint8_t is_signed = r.u8("spec is_signed");
  if (is_signed > 1) {
    throw SnapshotError("snapshot spec is_signed out of range: " +
                        std::to_string(is_signed));
  }
  s.is_signed = is_signed != 0;
  s.zero_fraction = r.f64("spec zero_fraction");
  if (!(s.alpha >= 1.0) || !(s.zero_fraction >= 0.0) ||
      !(s.zero_fraction <= 1.0)) {
    throw SnapshotError("snapshot input spec has out-of-range distribution");
  }
  return s;
}

void encode_weights(Writer& w, const std::vector<nn::Tensor>& weights) {
  w.u64(weights.size());
  for (const nn::Tensor& t : weights) {
    const auto& dims = t.shape().dims();
    w.u32(static_cast<std::uint32_t>(dims.size()));
    for (const std::int64_t d : dims) w.i64(d);
    for (std::int64_t i = 0; i < t.elements(); ++i) {
      const auto v = static_cast<std::uint16_t>(t.flat(i));
      w.u8(static_cast<std::uint8_t>(v & 0xFF));
      w.u8(static_cast<std::uint8_t>(v >> 8));
    }
  }
}

[[nodiscard]] std::vector<nn::Tensor> decode_weights(Reader& r) {
  const std::uint64_t count = r.u64("weight tensor count");
  if (count > kMaxTensors) {
    throw SnapshotError("snapshot weight tensor count out of range: " +
                        std::to_string(count));
  }
  std::vector<nn::Tensor> weights;
  weights.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t t = 0; t < count; ++t) {
    const std::uint32_t rank = r.u32("tensor rank");
    if (rank > kMaxRank) {
      throw SnapshotError("snapshot tensor rank out of range: " +
                          std::to_string(rank));
    }
    std::vector<std::int64_t> dims;
    std::int64_t elements = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      const std::int64_t dim = r.i64("tensor dim");
      // Bound each dim so the product below cannot overflow, and the total
      // so a flipped length cannot drive a huge allocation past the
      // remaining-bytes check.
      if (dim < 0 || dim > (std::int64_t{1} << 32)) {
        throw SnapshotError("snapshot tensor dim out of range: " +
                            std::to_string(dim));
      }
      dims.push_back(dim);
      elements *= dim;
      if (elements > (std::int64_t{1} << 33)) {
        throw SnapshotError("snapshot tensor element count out of range");
      }
    }
    r.need(static_cast<std::size_t>(elements) * 2, "tensor values");
    nn::Tensor tensor{nn::Shape(std::move(dims))};
    for (std::int64_t i = 0; i < elements; ++i) {
      const auto lo = static_cast<std::uint16_t>(r.u8("tensor value"));
      const auto hi = static_cast<std::uint16_t>(r.u8("tensor value"));
      tensor.set_flat(
          i, static_cast<Value>(static_cast<std::uint16_t>(lo | (hi << 8))));
    }
    weights.push_back(std::move(tensor));
  }
  return weights;
}

[[nodiscard]] std::size_t weighted_layer_count(const nn::Network& net) {
  std::size_t n = 0;
  for (const auto& l : net.layers()) {
    if (l.has_weights()) ++n;
  }
  return n;
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
  return loom::fnv1a64(bytes);  // shared primitive, common/bitops.hpp
}

std::uint64_t fnv1a64(const std::string& s) noexcept {
  return fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::vector<std::uint8_t> encode_snapshot(const Model& model) {
  Writer header;
  header.bytes(kMagic, sizeof kMagic);
  header.u32(kSnapshotVersion);
  header.u32(kSectionCount);

  for (const SectionId id : kSectionOrder) {
    Writer payload;
    switch (id) {
      case kName: payload.str(model.name); break;
      case kNetwork: encode_network(payload, model.net); break;
      case kProfile: encode_profile(payload, model.profile); break;
      case kInputSpec: encode_input_spec(payload, model.input_spec); break;
      case kWeights: encode_weights(payload, model.weights); break;
    }
    header.u32(id);
    header.u64(payload.out.size());
    header.u64(fnv1a64(payload.out));
    header.bytes(payload.out.data(), payload.out.size());
  }
  return std::move(header.out);
}

Model decode_snapshot(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  r.need(sizeof kMagic, "magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw SnapshotError("snapshot magic mismatch: not a LOOMSNAP file");
  }
  r.pos = sizeof kMagic;
  const std::uint32_t version = r.u32("version");
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot version skew: file has version " +
                        std::to_string(version) + ", this build reads " +
                        std::to_string(kSnapshotVersion));
  }
  const std::uint32_t sections = r.u32("section count");
  if (sections != kSectionCount) {
    throw SnapshotError("snapshot section count mismatch: " +
                        std::to_string(sections) + " != " +
                        std::to_string(kSectionCount));
  }

  std::string name;
  std::optional<nn::Network> net;
  quant::PrecisionProfile profile;
  nn::SyntheticSpec input_spec;
  std::vector<nn::Tensor> weights;
  for (const SectionId expected : kSectionOrder) {
    const std::uint32_t id = r.u32("section id");
    if (id != expected) {
      throw SnapshotError("snapshot section order violation: got id " +
                          std::to_string(id) + ", expected " +
                          std::to_string(expected));
    }
    const std::uint64_t length = r.u64("section length");
    const std::uint64_t checksum = r.u64("section checksum");
    // Checked AFTER the checksum field is consumed: remaining() must cover
    // the payload itself, or the subspan below would read past the buffer.
    if (length > r.remaining()) {
      throw SnapshotError("snapshot section " + std::to_string(id) +
                          " length " + std::to_string(length) +
                          " overruns the file (" +
                          std::to_string(r.remaining()) + " bytes left)");
    }
    const std::span<const std::uint8_t> payload =
        bytes.subspan(r.pos, static_cast<std::size_t>(length));
    if (fnv1a64(payload) != checksum) {
      throw SnapshotError("snapshot section " + std::to_string(id) +
                          " checksum mismatch (corrupted payload)");
    }
    Reader section{payload};
    switch (expected) {
      case kName: name = section.str("model name"); break;
      case kNetwork: net.emplace(decode_network(section)); break;
      case kProfile: profile = decode_profile(section); break;
      case kInputSpec: input_spec = decode_input_spec(section); break;
      case kWeights: weights = decode_weights(section); break;
    }
    if (section.pos != payload.size()) {
      throw SnapshotError("snapshot section " + std::to_string(expected) +
                          " has " +
                          std::to_string(payload.size() - section.pos) +
                          " trailing bytes");
    }
    r.pos += static_cast<std::size_t>(length);
  }
  if (r.pos != bytes.size()) {
    throw SnapshotError("snapshot has " + std::to_string(bytes.size() - r.pos) +
                        " trailing bytes after the last section");
  }

  if (weights.size() != weighted_layer_count(*net)) {
    throw SnapshotError(
        "snapshot weight/layer mismatch: " + std::to_string(weights.size()) +
        " weight tensors for " +
        std::to_string(weighted_layer_count(*net)) + " weighted layers");
  }
  std::size_t wi = 0;
  for (const auto& l : net->layers()) {
    if (!l.has_weights()) continue;
    if (weights[wi].elements() != l.weight_count()) {
      throw SnapshotError("snapshot weight tensor " + std::to_string(wi) +
                          " has " + std::to_string(weights[wi].elements()) +
                          " values, layer '" + l.name + "' needs " +
                          std::to_string(l.weight_count()));
    }
    ++wi;
  }
  return Model{std::move(name), std::move(*net), std::move(profile),
               std::move(weights), input_spec};
}

void save_snapshot(const Model& model, const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(model);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw SnapshotError("cannot open '" + tmp + "' for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw SnapshotError("short write saving snapshot to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

std::shared_ptr<const Model> load_snapshot(const std::string& path,
                                           FaultInjector* injector) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SnapshotError("cannot open snapshot '" + path + "'");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    bytes.insert(bytes.end(), buf, buf + n);
    if (n < sizeof buf) break;
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw SnapshotError("short read loading snapshot '" + path + "'");
  }

  if (injector != nullptr) {
    if (const auto bit = injector->corrupt_snapshot_bit(bytes.size() * 8)) {
      bytes[static_cast<std::size_t>(*bit / 8)] ^=
          static_cast<std::uint8_t>(1u << (*bit % 8));
    }
  }
  return std::make_shared<const Model>(decode_snapshot(bytes));
}

}  // namespace loom::serve
