#include "serve/model_registry.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "quant/calibration.hpp"

namespace loom::serve {

namespace {

/// Weighted-layer count of a network.
std::size_t weighted_layers(const nn::Network& net) {
  std::size_t n = 0;
  for (const auto& l : net.layers()) {
    if (l.has_weights()) ++n;
  }
  return n;
}

/// The input distribution of the network's first weighted layer, calibrated
/// the same way LayerWorkload calibrates its synthetic activations (and
/// through the same process-wide memo, so servers and simulators share the
/// bisection results).
nn::SyntheticSpec input_spec_for(const nn::Network& net,
                                 const quant::PrecisionProfile& profile) {
  for (const auto& l : net.layers()) {
    if (l.kind == nn::LayerKind::kConv) {
      const double target = std::max(
          1.0, static_cast<double>(l.act_precision) - profile.dynamic_act_trim);
      return quant::calibrated_spec_cached(l.act_precision, /*is_signed=*/false,
                                           /*zero_fraction=*/0.45,
                                           /*group_size=*/256, target);
    }
  }
  // FC-only networks stream full-precision signed activations.
  return nn::SyntheticSpec{.precision = kBasePrecision, .alpha = 3.0,
                           .is_signed = true};
}

}  // namespace

nn::Tensor Model::make_input(std::uint64_t seed, std::uint64_t stream) const {
  return nn::make_activation_tensor(input_shape(), input_spec, seed, stream);
}

std::shared_ptr<const Model> ModelRegistry::add(
    std::string name, nn::Network net, quant::PrecisionProfile profile,
    std::vector<nn::Tensor> weights) {
  if (weights.size() != weighted_layers(net)) {
    throw ConfigError("model '" + name + "': " + std::to_string(weights.size()) +
                      " weight tensors for " +
                      std::to_string(weighted_layers(net)) +
                      " weighted layers");
  }
  const nn::SyntheticSpec input_spec = input_spec_for(net, profile);
  auto model = std::make_shared<Model>(
      Model{std::move(name), std::move(net), std::move(profile),
            std::move(weights), input_spec});
  return insert(std::move(model));
}

std::shared_ptr<const Model> ModelRegistry::add(Model model) {
  if (model.weights.size() != weighted_layers(model.net)) {
    throw ConfigError("model '" + model.name + "': " +
                      std::to_string(model.weights.size()) +
                      " weight tensors for " +
                      std::to_string(weighted_layers(model.net)) +
                      " weighted layers");
  }
  return insert(std::make_shared<Model>(std::move(model)));
}

std::shared_ptr<const Model> ModelRegistry::add_synthetic(
    std::string name, nn::Network net, quant::PrecisionProfile profile,
    std::uint64_t seed) {
  std::vector<nn::Tensor> weights;
  std::uint64_t layer_index = 0;
  for (const auto& l : net.layers()) {
    if (l.has_weights()) {
      const nn::SyntheticSpec spec{.precision = l.weight_precision,
                                   .alpha = 3.0,
                                   .is_signed = true};
      weights.push_back(nn::make_weight_tensor(
          l.weight_count(), spec, seed, nn::weight_stream(layer_index)));
    }
    ++layer_index;
  }
  return add(std::move(name), std::move(net), std::move(profile),
             std::move(weights));
}

std::shared_ptr<const Model> ModelRegistry::find(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(name);
  if (it == models_.end()) {
    throw ConfigError("unknown model '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> ModelRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::shared_ptr<const Model> ModelRegistry::insert(
    std::shared_ptr<Model> model) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = models_.emplace(model->name, model);
  if (!inserted) {
    throw ConfigError("model '" + model->name + "' already registered");
  }
  return it->second;
}

}  // namespace loom::serve
