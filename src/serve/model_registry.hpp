// Model registry for the inference server: immutable, shareable models —
// a profiled network plus materialized weight tensors — registered once and
// referenced by every session and batch that serves them. Weight tensors
// and the calibrated input distribution are memoized at registration (the
// calibration itself goes through the process-wide
// quant::calibrated_spec_cached memo shared with the workload machinery),
// so concurrent requests never rebuild per-model state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/network.hpp"
#include "nn/synthetic.hpp"
#include "nn/tensor.hpp"
#include "quant/profiles.hpp"

namespace loom::serve {

/// An immutable inference model. The (network, profile) pair is the
/// batching key: the server only coalesces requests that share a Model.
struct Model {
  std::string name;
  nn::Network net;
  quant::PrecisionProfile profile;
  /// One materialized weight tensor per weighted layer, in layer order
  /// (what FunctionalLoomEngine::run_network_batch consumes).
  std::vector<nn::Tensor> weights;
  /// Distribution the first layer's input activations are drawn from —
  /// calibrated like LayerWorkload calibrates its synthetic inputs, via the
  /// shared calibrated_spec_cached memo.
  nn::SyntheticSpec input_spec;

  /// Input activation volume (the first layer's input shape).
  [[nodiscard]] nn::Shape3 input_shape() const { return net.layer(0).in; }

  /// Deterministic synthetic request input drawn from `input_spec`.
  /// Distinct `stream` values give independent inputs.
  [[nodiscard]] nn::Tensor make_input(std::uint64_t seed,
                                      std::uint64_t stream) const;
};

/// Thread-safe name -> Model map. Registration materializes weights once;
/// lookups hand out shared ownership, so models outlive server shutdown
/// and in-flight batches without copies.
class ModelRegistry {
 public:
  /// Register a model with explicit weights (one tensor per weighted
  /// layer). `net` must already carry profile precisions
  /// (quant::apply_profile). Throws ConfigError on duplicate names or a
  /// weight-count mismatch.
  std::shared_ptr<const Model> add(std::string name, nn::Network net,
                                   quant::PrecisionProfile profile,
                                   std::vector<nn::Tensor> weights);

  /// Register a model with synthetic weights drawn per weighted layer from
  /// a distribution calibrated to the layer's profile weight precision.
  /// Deterministic in (net, profile, seed).
  std::shared_ptr<const Model> add_synthetic(std::string name, nn::Network net,
                                             quant::PrecisionProfile profile,
                                             std::uint64_t seed);

  /// Register a fully materialized model as-is — the snapshot-restore path:
  /// `model.input_spec` is trusted (no recalibration), so a registry built
  /// from load_snapshot serves byte-identical outputs to the one that saved
  /// it. Throws ConfigError on duplicate names or a weight-count mismatch.
  std::shared_ptr<const Model> add(Model model);

  /// Look up a registered model; throws ConfigError when unknown.
  [[nodiscard]] std::shared_ptr<const Model> find(
      const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::shared_ptr<const Model> insert(std::shared_ptr<Model> model);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Model>> models_;
};

}  // namespace loom::serve
