#include "serve/shard_router.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "serve/model_snapshot.hpp"

namespace loom::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t ns_of(Clock::duration d) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d);
  return ns.count() < 0 ? 0 : static_cast<std::uint64_t>(ns.count());
}

[[nodiscard]] double ms_of(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Rendezvous key for (model, tenant). The tenant hash is re-mixed before
/// combining so ("ab","c") and ("a","bc")-style collisions cannot align.
[[nodiscard]] std::uint64_t route_key(const std::string& model,
                                      const std::string& tenant) {
  return fnv1a64(model) ^ mix64(fnv1a64(tenant));
}

/// Factory for the shared-registry constructor: every shard is a fresh
/// InferenceServer over the same registry.
[[nodiscard]] ShardFactory shared_registry_factory(
    std::shared_ptr<const ModelRegistry> models, const RouterOptions& opts) {
  LOOM_EXPECTS(models != nullptr);
  ServeOptions shard_opts = opts.shard;
  shard_opts.faults = opts.faults;
  return [models = std::move(models),
          shard_opts = std::move(shard_opts)](const ShardContext&) {
    return ShardInstance{
        models, std::make_shared<InferenceServer>(*models, shard_opts)};
  };
}

}  // namespace

const char* health_name(ShardHealth h) noexcept {
  switch (h) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kEjected: return "ejected";
    case ShardHealth::kProbation: return "probation";
  }
  return "?";
}

ShardRouter::ShardRouter(std::shared_ptr<const ModelRegistry> models,
                         RouterOptions opts)
    // `opts` is read by the factory builder and copied into the delegated
    // constructor; both are plain reads, so their (indeterminate) argument
    // order is harmless.
    : ShardRouter(shared_registry_factory(std::move(models), opts), opts) {}

ShardRouter::ShardRouter(ShardFactory factory, RouterOptions opts)
    : opts_(std::move(opts)),
      factory_(std::move(factory)),
      injector_(opts_.faults) {
  LOOM_EXPECTS(factory_ != nullptr);
  LOOM_EXPECTS(opts_.shards >= 1);
  LOOM_EXPECTS(opts_.attempt_timeout.count() > 0);
  LOOM_EXPECTS(opts_.hedge_delay.count() >= 0);
  LOOM_EXPECTS(opts_.max_passes >= 1);
  LOOM_EXPECTS(opts_.ewma_alpha > 0.0 && opts_.ewma_alpha <= 1.0);
  LOOM_EXPECTS(opts_.degrade_error_rate > 0.0 &&
               opts_.degrade_error_rate <= opts_.eject_error_rate);
  LOOM_EXPECTS(opts_.eject_error_rate <= 1.0);
  LOOM_EXPECTS(opts_.eject_after_consecutive >= 1);
  LOOM_EXPECTS(opts_.probation_backoff.count() >= 0);
  LOOM_EXPECTS(opts_.max_backoff >= opts_.probation_backoff);
  LOOM_EXPECTS(opts_.reenter_successes >= 1);
  LOOM_EXPECTS(opts_.probe_interval.count() >= 0);
  LOOM_EXPECTS(opts_.probe_timeout.count() > 0);
  build_shards();
  if (opts_.probe_interval.count() > 0) {
    prober_ = std::thread([this] { prober_loop(); });
  }
}

ShardRouter::~ShardRouter() { stop(); }

void ShardRouter::build_shards() {
  shards_.resize(static_cast<std::size_t>(opts_.shards));
  for (int i = 0; i < opts_.shards; ++i) {
    Shard& s = shards_[static_cast<std::size_t>(i)];
    s.error_ewma = Ewma(opts_.ewma_alpha);
    s.latency_ewma = Ewma(opts_.ewma_alpha);
    // The initial build is not fault-gated: a throwing factory here is a
    // configuration error, not a runtime fault.
    ShardInstance inst = factory_(ShardContext{i, injector_});
    LOOM_EXPECTS(inst.server != nullptr);
    LOOM_EXPECTS(inst.registry != nullptr);
    s.server = std::move(inst.server);
    s.registry = std::move(inst.registry);
  }
}

std::vector<int> ShardRouter::rank_shards(const std::string& model,
                                          const std::string& tenant) const {
  const std::uint64_t key = route_key(model, tenant);
  std::vector<std::pair<std::uint64_t, int>> scored;
  scored.reserve(static_cast<std::size_t>(opts_.shards));
  for (int i = 0; i < opts_.shards; ++i) {
    const std::uint64_t salt =
        mix64(opts_.rendezvous_seed + static_cast<std::uint64_t>(i));
    scored.emplace_back(mix64(key ^ salt), i);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<int> order;
  order.reserve(scored.size());
  for (const auto& [score, i] : scored) order.push_back(i);
  return order;
}

bool ShardRouter::charge_quota(const std::string& tenant,
                               Clock::time_point now) {
  const auto it = opts_.tenant_quotas.find(tenant);
  const TenantQuota& q =
      it != opts_.tenant_quotas.end() ? it->second : opts_.default_quota;
  if (q.rate_per_sec <= 0.0) return true;
  const double cap = std::max(1.0, q.burst);
  Bucket& b = buckets_[tenant];
  if (!b.seeded) {
    b.tokens = cap;  // a new tenant starts with a full burst allowance
    b.last = now;
    b.seeded = true;
  } else {
    const double sec = std::chrono::duration<double>(now - b.last).count();
    b.tokens = std::min(cap, b.tokens + sec * q.rate_per_sec);
    b.last = now;
  }
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  return false;
}

void ShardRouter::set_health(int shard, ShardHealth to, Clock::time_point now) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  if (s.health == to) return;
  // Bounded transition log: keep the newest entries (drop the oldest half
  // when full, so appends stay amortized O(1)).
  constexpr std::size_t kMaxTransitions = 2048;
  if (transitions_.size() >= kMaxTransitions) {
    transitions_.erase(transitions_.begin(),
                       transitions_.begin() + kMaxTransitions / 2);
  }
  transitions_.push_back(HealthTransition{shard, s.health, to, now});
  s.health = to;
}

void ShardRouter::record_success(int shard, std::chrono::nanoseconds latency,
                                 Clock::time_point now) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  s.error_ewma.add(0.0);
  s.latency_ewma.add(
      std::chrono::duration<double, std::milli>(latency).count());
  s.consecutive_failures = 0;
  ++s.completed;
  if (s.health == ShardHealth::kProbation) {
    if (++s.probation_successes >= opts_.reenter_successes) {
      set_health(shard, ShardHealth::kHealthy, now);
      s.backoff = std::chrono::milliseconds(0);
      if (s.down_since != Clock::time_point::min()) {
        stats_.recovery_ms.add(ms_of(now - s.down_since));
        s.down_since = Clock::time_point::min();
      }
    }
  } else if (s.health == ShardHealth::kDegraded &&
             s.error_ewma.value() < opts_.degrade_error_rate / 2.0) {
    set_health(shard, ShardHealth::kHealthy, now);
  }
}

void ShardRouter::record_failure(int shard, Clock::time_point now) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  s.error_ewma.add(1.0);
  ++s.consecutive_failures;
  ++s.failed;
  if (s.health == ShardHealth::kEjected) return;  // already out of traffic
  const bool probation_slip = s.health == ShardHealth::kProbation;
  const bool eject =
      probation_slip ||  // half-open trial failed: straight back out
      s.consecutive_failures >= opts_.eject_after_consecutive ||
      s.error_ewma.value() >= opts_.eject_error_rate;
  if (eject) {
    s.backoff = s.backoff.count() == 0
                    ? opts_.probation_backoff
                    : std::min(opts_.max_backoff, s.backoff * 2);
    s.eject_until = now + s.backoff;
    s.probation_successes = 0;
    if (s.down_since == Clock::time_point::min()) s.down_since = now;
    set_health(shard, ShardHealth::kEjected, now);
  } else if (s.health == ShardHealth::kHealthy &&
             s.error_ewma.value() >= opts_.degrade_error_rate) {
    set_health(shard, ShardHealth::kDegraded, now);
  }
}

bool ShardRouter::eligible(int shard, Clock::time_point now) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  if (!s.alive || s.server == nullptr) return false;
  if (s.health == ShardHealth::kEjected) {
    if (now < s.eject_until) return false;
    // Backoff expired: half-open. Trial traffic decides readmission.
    s.probation_successes = 0;
    set_health(shard, ShardHealth::kProbation, now);
  }
  return true;
}

bool ShardRouter::try_restart(int shard, Clock::time_point now,
                              std::unique_lock<std::mutex>& lock) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  if (s.alive || s.restarting || stopping_) return false;
  s.restarting = true;
  lock.unlock();
  // The factory runs unlocked: it builds an InferenceServer (spawns
  // workers) and may load snapshots — both slow, and the snapshot load may
  // throw under injected corruption.
  ShardInstance inst;
  std::exception_ptr err;
  try {
    inst = factory_(ShardContext{shard, injector_});
    if (inst.server == nullptr || inst.registry == nullptr) {
      throw ConfigError("shard factory returned a null server or registry");
    }
  } catch (...) {
    err = std::current_exception();
  }
  lock.lock();
  s.restarting = false;
  if (stopping_) {
    if (inst.server != nullptr) {
      lock.unlock();
      inst.server->stop();
      lock.lock();
    }
    return false;
  }
  if (err != nullptr) {
    // Restart failed (e.g. SnapshotError): stay dead for another backoff.
    s.backoff = s.backoff.count() == 0
                    ? opts_.probation_backoff
                    : std::min(opts_.max_backoff, s.backoff * 2);
    s.eject_until = Clock::now() + s.backoff;
    return false;
  }
  s.server = std::move(inst.server);
  s.registry = std::move(inst.registry);
  s.alive = true;
  ++s.restarts;
  s.error_ewma.reset();
  s.latency_ewma.reset();
  s.consecutive_failures = 0;
  s.probation_successes = 0;
  set_health(shard, ShardHealth::kProbation, now);
  return true;
}

void ShardRouter::kill_shard(int shard) {
  LOOM_EXPECTS(shard >= 0 && shard < opts_.shards);
  std::shared_ptr<InferenceServer> victim;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Shard& s = shards_[static_cast<std::size_t>(shard)];
    if (!s.alive || s.server == nullptr) return;
    const Clock::time_point now = Clock::now();
    victim = std::move(s.server);
    s.server = nullptr;
    s.alive = false;
    ++s.kills;
    s.consecutive_failures = 0;
    s.probation_successes = 0;
    s.error_ewma.reset();
    s.latency_ewma.reset();
    s.backoff = s.backoff.count() == 0
                    ? opts_.probation_backoff
                    : std::min(opts_.max_backoff, s.backoff * 2);
    s.eject_until = now + s.backoff;
    if (s.down_since == Clock::time_point::min()) s.down_since = now;
    set_health(shard, ShardHealth::kEjected, now);
  }
  // Drain-then-join outside the lock: the dying shard still completes its
  // admitted work, so a kill never loses an already-issued future.
  victim->stop();
}

bool ShardRouter::restart_shard(int shard) {
  LOOM_EXPECTS(shard >= 0 && shard < opts_.shards);
  std::unique_lock<std::mutex> lock(mutex_);
  shards_[static_cast<std::size_t>(shard)].eject_until =
      Clock::time_point::min();
  return try_restart(shard, Clock::now(), lock);
}

InferenceResult ShardRouter::attempt(
    const std::shared_ptr<InferenceServer>& server,
    const std::shared_ptr<const Model>& model, const nn::Tensor& input,
    const RouteOptions& ropts, Clock::time_point attempt_deadline) {
  const Clock::time_point now = Clock::now();
  const auto admit_budget =
      attempt_deadline > now
          ? std::chrono::duration_cast<std::chrono::nanoseconds>(
                attempt_deadline - now)
          : std::chrono::nanoseconds(0);
  SubmitOptions so;
  so.priority = ropts.priority;
  so.deadline_at = attempt_deadline;
  std::future<InferenceResult> fut =
      server->try_submit(model, input, admit_budget, so);
  return fut.get();
}

InferenceResult ShardRouter::submit(const std::string& model, nn::Tensor input,
                                    const RouteOptions& ropts) {
  LOOM_EXPECTS(ropts.deadline.count() >= 0);
  const Clock::time_point t0 = Clock::now();
  Clock::time_point deadline_at = ropts.deadline_at;
  if (ropts.deadline.count() > 0) {
    deadline_at = std::min(deadline_at, t0 + ropts.deadline);
  }

  // Terminal-outcome accounting: every submit() that passes admission ends
  // in exactly one bucket, so after a drain
  //   submitted == completed + quota_rejected + shed + timed_out + failed.
  const auto finish = [&](std::uint64_t RouterStats::*agg,
                          std::uint64_t TenantStats::*per) {
    ++(stats_.*agg);
    ++(stats_.tenants[ropts.tenant].*per);
  };

  const std::vector<int> rank = rank_shards(model, ropts.tenant);
  bool kill_primary = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw ShutdownError("shard router is stopping; request rejected");
    }
    ++stats_.submitted;
    ++stats_.tenants[ropts.tenant].submitted;
    if (!charge_quota(ropts.tenant, t0)) {
      finish(&RouterStats::quota_rejected, &TenantStats::quota_rejected);
      throw TenantQuotaError("tenant '" + ropts.tenant +
                             "' exhausted its token-bucket quota");
    }
    if (deadline_at <= t0) {
      // Dead on arrival: mirror the server layer's immediate rejection.
      finish(&RouterStats::timed_out, &TenantStats::timed_out);
      throw DeadlineExceededError(
          "request for '" + model +
          "' rejected at the router: absolute deadline already expired");
    }
    // Fault draws happen exactly once per request that passes admission,
    // against the rendezvous-primary shard, so the k-th admitted submit's
    // faults are a pure function of (seed, k) — never of thread
    // interleaving or retries.
    if (injector_.enabled()) {
      kill_primary = injector_.should_kill_shard();
      if (injector_.should_stall_shard()) {
        shards_[static_cast<std::size_t>(rank.front())].stall_until =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               injector_.plan().shard_stall);
      }
    }
  }
  if (kill_primary) kill_shard(rank.front());

  std::exception_ptr last_error;
  bool saw_shed = false;
  std::uint64_t attempts = 0;
  for (int pass = 0; pass < opts_.max_passes; ++pass) {
    bool attempted_this_pass = false;
    for (std::size_t ri = 0; ri < rank.size(); ++ri) {
      const int si = rank[ri];
      Clock::time_point now = Clock::now();
      if (now >= deadline_at) {
        const std::lock_guard<std::mutex> lock(mutex_);
        finish(&RouterStats::timed_out, &TenantStats::timed_out);
        throw DeadlineExceededError("request for '" + model +
                                    "' ran out of deadline during failover");
      }

      std::shared_ptr<InferenceServer> server;
      std::shared_ptr<const ModelRegistry> registry;
      std::shared_ptr<InferenceServer> hedge_server;
      int hedge_si = -1;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_) {
          finish(&RouterStats::failed, &TenantStats::failed);
          throw ShutdownError("shard router stopped mid-request");
        }
        Shard& s = shards_[static_cast<std::size_t>(si)];
        if (!s.alive && now >= s.eject_until) {
          // Natural recovery: the backoff expired while we were routing.
          (void)try_restart(si, now, lock);
        }
        if (!eligible(si, now)) continue;
        if (s.stall_until > now) {
          // Injected stall: the shard refuses service; burn the attempt
          // and fail over like a timeout would.
          ++s.routed;
          ++attempts;
          if (attempts > 1) ++stats_.failovers;
          record_failure(si, now);
          attempted_this_pass = true;
          continue;
        }
        server = s.server;
        registry = s.registry;
        ++s.routed;
        ++attempts;
        if (attempts > 1) ++stats_.failovers;
        // Hedge partner: the next eligible, unstalled shard in the ranking
        // (only consulted for the first, interactive, hedge-allowed
        // attempt).
        if (attempts == 1 && ropts.allow_hedge &&
            ropts.priority == Priority::kInteractive &&
            opts_.hedge_delay.count() > 0) {
          for (std::size_t rj = ri + 1; rj < rank.size(); ++rj) {
            const int sj = rank[rj];
            Shard& h = shards_[static_cast<std::size_t>(sj)];
            if (eligible(sj, now) && h.stall_until <= now) {
              hedge_server = h.server;
              hedge_si = sj;
              break;
            }
          }
        }
      }
      attempted_this_pass = true;

      std::shared_ptr<const Model> handle;
      try {
        handle = registry->find(model);
      } catch (...) {
        // Unknown model is terminal — no shard will know it either.
        const std::lock_guard<std::mutex> lock(mutex_);
        finish(&RouterStats::failed, &TenantStats::failed);
        throw;
      }

      now = Clock::now();
      const Clock::time_point attempt_deadline =
          std::min(deadline_at, now + opts_.attempt_timeout);

      // ---- Hedged attempt --------------------------------------------------
      if (hedge_server != nullptr) {
        try {
          SubmitOptions so;
          so.priority = ropts.priority;
          so.deadline_at = attempt_deadline;
          std::future<InferenceResult> primary_fut = server->try_submit(
              handle, input,
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  attempt_deadline - now),
              so);
          std::future<InferenceResult> hedge_fut;
          bool hedged = false;
          if (primary_fut.wait_for(opts_.hedge_delay) !=
              std::future_status::ready) {
            try {
              hedge_fut = hedge_server->try_submit(
                  handle, input, std::chrono::nanoseconds(0), so);
              hedged = true;
              const std::lock_guard<std::mutex> lock(mutex_);
              ++stats_.hedges;
            } catch (...) {
              // Hedge admission failed (shed/stopped): race only the
              // primary. The primary attempt is unaffected.
            }
          }
          // First success wins; a failed leg keeps the race alive for the
          // other. The abandoned loser future is safely dropped — its
          // shard's server still resolves it.
          std::exception_ptr primary_err;
          std::exception_ptr hedge_err;
          const auto slice = std::chrono::microseconds(50);
          for (;;) {
            if (primary_err == nullptr &&
                primary_fut.wait_for(hedged ? slice : slice * 20) ==
                    std::future_status::ready) {
              try {
                InferenceResult res = primary_fut.get();
                const std::lock_guard<std::mutex> lock(mutex_);
                record_success(si, Clock::now() - t0, Clock::now());
                finish(&RouterStats::completed, &TenantStats::completed);
                stats_.latency_ns.add(ns_of(Clock::now() - t0));
                res.shard = si;
                return res;
              } catch (...) {
                primary_err = std::current_exception();
              }
            }
            if (hedged && hedge_err == nullptr &&
                hedge_fut.wait_for(slice) == std::future_status::ready) {
              try {
                InferenceResult res = hedge_fut.get();
                const std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.hedge_wins;
                finish(&RouterStats::completed, &TenantStats::completed);
                stats_.latency_ns.add(ns_of(Clock::now() - t0));
                res.shard = hedge_si;
                // Credit the breaker only if that shard still runs the
                // generation we hit; after a restart the success belongs
                // to the dead instance, not the fresh one in probation.
                if (shards_[static_cast<std::size_t>(hedge_si)].server ==
                    hedge_server) {
                  record_success(hedge_si, Clock::now() - t0, Clock::now());
                }
                return res;
              } catch (...) {
                hedge_err = std::current_exception();
              }
            }
            if (primary_err != nullptr && (!hedged || hedge_err != nullptr)) {
              std::rethrow_exception(primary_err);
            }
          }
        } catch (const OverloadError&) {
          saw_shed = true;
          last_error = std::current_exception();
          const std::lock_guard<std::mutex> lock(mutex_);
          record_failure(si, Clock::now());
          continue;
        } catch (const DeadlineExceededError&) {
          last_error = std::current_exception();
          const std::lock_guard<std::mutex> lock(mutex_);
          record_failure(si, Clock::now());
          continue;
        } catch (...) {
          last_error = std::current_exception();
          const std::lock_guard<std::mutex> lock(mutex_);
          record_failure(si, Clock::now());
          continue;
        }
      }

      // ---- Plain attempt ---------------------------------------------------
      try {
        InferenceResult res =
            attempt(server, handle, input, ropts, attempt_deadline);
        const std::lock_guard<std::mutex> lock(mutex_);
        record_success(si, Clock::now() - t0, Clock::now());
        finish(&RouterStats::completed, &TenantStats::completed);
        stats_.latency_ns.add(ns_of(Clock::now() - t0));
        res.shard = si;
        return res;
      } catch (const OverloadError&) {
        saw_shed = true;
        last_error = std::current_exception();
        const std::lock_guard<std::mutex> lock(mutex_);
        record_failure(si, Clock::now());
      } catch (const DeadlineExceededError&) {
        last_error = std::current_exception();
        const std::lock_guard<std::mutex> lock(mutex_);
        record_failure(si, Clock::now());
      } catch (...) {
        // ShutdownError (the shard was killed under us), engine errors, …
        last_error = std::current_exception();
        const std::lock_guard<std::mutex> lock(mutex_);
        record_failure(si, Clock::now());
      }
    }

    if (!attempted_this_pass) {
      // Zero eligible shards: force recovery rather than failing a request
      // that still has budget. Restart the best-ranked dead shard ignoring
      // its backoff; failing that, cut short the best-ranked ejection.
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) {
        finish(&RouterStats::failed, &TenantStats::failed);
        throw ShutdownError("shard router stopped mid-request");
      }
      const Clock::time_point now = Clock::now();
      bool forced = false;
      for (const int si : rank) {
        Shard& s = shards_[static_cast<std::size_t>(si)];
        if (!s.alive && !s.restarting) {
          ++stats_.forced_recoveries;
          s.eject_until = Clock::time_point::min();
          forced = try_restart(si, now, lock);
          break;
        }
        if (s.alive && s.health == ShardHealth::kEjected &&
            s.eject_until > now) {
          ++stats_.forced_recoveries;
          s.eject_until = now;  // eligible() flips it to probation
          forced = true;
          break;
        }
      }
      if (!forced && !std::any_of(shards_.begin(), shards_.end(),
                                  [](const Shard& s) {
                                    return s.alive || s.restarting;
                                  })) {
        // Every shard is dead and the factory keeps failing; the passes
        // bound gives up below.
        continue;
      }
    }
  }

  // Failover budget exhausted: classify the terminal outcome.
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Clock::now() >= deadline_at) {
    finish(&RouterStats::timed_out, &TenantStats::timed_out);
    throw DeadlineExceededError("request for '" + model +
                                "' ran out of deadline during failover");
  }
  if (last_error != nullptr) {
    if (saw_shed) {
      finish(&RouterStats::shed, &TenantStats::shed);
    } else {
      finish(&RouterStats::failed, &TenantStats::failed);
    }
    std::rethrow_exception(last_error);
  }
  finish(&RouterStats::shed, &TenantStats::shed);
  throw OverloadError("request for '" + model + "' found no eligible shard in " +
                      std::to_string(opts_.max_passes) + " failover passes");
}

void ShardRouter::prober_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stop_cv_.wait_for(lock, opts_.probe_interval,
                            [this] { return stopping_; })) {
        return;
      }
    }
    for (int si = 0; si < opts_.shards; ++si) {
      std::shared_ptr<InferenceServer> server;
      std::shared_ptr<const ModelRegistry> registry;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_) return;
        const Clock::time_point now = Clock::now();
        Shard& s = shards_[static_cast<std::size_t>(si)];
        if (!s.alive && now >= s.eject_until) (void)try_restart(si, now, lock);
        if (!eligible(si, now)) continue;
        if (s.stall_until > now) continue;  // a stalled probe tells us nothing new
        ++s.routed;  // probes are attempts too: keep routed >= completed+failed
        server = s.server;
        registry = s.registry;
      }
      if (injector_.should_fail_probe()) {
        const std::lock_guard<std::mutex> lock(mutex_);
        record_failure(si, Clock::now());
        continue;
      }
      try {
        const std::string name =
            opts_.probe_model.empty() ? registry->names().front()
                                      : opts_.probe_model;
        const std::shared_ptr<const Model> handle = registry->find(name);
        const Clock::time_point sent = Clock::now();
        // Best-effort priority: probes are the first thing shed under real
        // load, so probing never steals capacity from user traffic.
        SubmitOptions so;
        so.priority = Priority::kBestEffort;
        so.deadline_at = sent + opts_.probe_timeout;
        std::future<InferenceResult> fut = server->try_submit(
            handle, handle->make_input(0xB10B, probe_counter_++),
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                opts_.probe_timeout),
            so);
        (void)fut.get();
        const std::lock_guard<std::mutex> lock(mutex_);
        record_success(si, Clock::now() - sent, Clock::now());
      } catch (const OverloadError&) {
        // A shed probe means the shard is busy, not broken — no signal.
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        record_failure(si, Clock::now());
      }
    }
  }
}

void ShardRouter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  std::call_once(join_once_, [this] {
    if (prober_.joinable()) prober_.join();
  });
  // Drain every shard outside the lock (their stop() is idempotent).
  std::vector<std::shared_ptr<InferenceServer>> servers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Shard& s : shards_) servers.push_back(s.server);
  }
  for (const auto& server : servers) {
    if (server != nullptr) server->stop();
  }
}

RouterStats ShardRouter::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RouterStats out = stats_;
  out.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = shards_[i];
    ShardStats ss;
    ss.health = s.health;
    ss.alive = s.alive;
    ss.routed = s.routed;
    ss.completed = s.completed;
    ss.failed = s.failed;
    ss.kills = s.kills;
    ss.restarts = s.restarts;
    ss.error_ewma = s.error_ewma.value();
    ss.latency_ewma_ms = s.latency_ewma.value();
    if (s.server != nullptr) ss.server = s.server->stats();
    out.shards.push_back(std::move(ss));
  }
  return out;
}

std::vector<HealthTransition> ShardRouter::transitions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

}  // namespace loom::serve
