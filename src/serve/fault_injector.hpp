// Deterministic, seed-replayable fault injection for the serving stack.
//
// The injector is compiled in always and disabled by default (every
// probability in FaultPlan is zero); enabling it costs one counter-based
// RNG draw per decision site. Each site owns an independent draw stream
// (CounterRng stream = site id) indexed by an atomic per-site counter, so
// for a fixed seed the k-th decision at a site is a pure function of
// (seed, site, k): a replayed run with the same number of visits to each
// site injects the same multiset of faults regardless of thread
// interleaving — which is what makes overload stress tests replayable via
// LOOM_SERVE_FAULT_SEED and the shard-router chaos tests via
// LOOM_ROUTER_FAULT_SEED.
//
// Sites wired into InferenceServer:
//   engine_failure   -- thrown as TransientEngineError from the bit-sliced
//                       engine's pre-run hook (primary attempts + retries;
//                       the scalar fallback engine has no hook)
//   fallback_failure -- same, but for the scalar-oracle fallback attempt,
//                       driving the fail-futures-individually path
//   batcher_delay    -- worker sleeps `batcher_delay` after popping a batch
//   queue_spike      -- admission control sees `queue_spike_depth` phantom
//                       pending requests, provoking watermark sheds
//
// Shard-scoped sites wired into ShardRouter (drawn once per routed request
// at fixed points, so the visit count — and with it the fault multiset —
// is a pure function of the request count, never of thread interleaving):
//   shard_kill       -- the request's rendezvous-primary shard is stopped
//                       (drain-then-join) and must re-enter through the
//                       probation circuit breaker
//   shard_stall      -- the primary shard refuses service for `shard_stall`
//                       (attempts against it burn their budget and fail
//                       over), exercising timeout-driven failover
//   probe_failure    -- a health probe is forced to fail without reaching
//                       the shard, driving degraded/ejected transitions
//   snapshot_corrupt -- load_snapshot flips one deterministic bit of the
//                       file image before decoding; the checksummed format
//                       must reject it with SnapshotError, never UB
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/rng.hpp"

namespace loom::serve {

/// Fault-injection configuration. All probabilities in [0, 1]; all zero
/// (the default) disables injection entirely.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Probability a bit-sliced engine run (initial attempt or retry) throws
  /// TransientEngineError before doing any work.
  double engine_failure_prob = 0.0;
  /// Probability the scalar-oracle fallback attempt throws too (exercises
  /// per-future failure without crashing the worker).
  double fallback_failure_prob = 0.0;
  /// Probability a popped batch is delayed by `batcher_delay` before
  /// running (simulates a slow worker; builds queue pressure).
  double batcher_delay_prob = 0.0;
  std::chrono::microseconds batcher_delay{0};
  /// Probability one admission decision observes `queue_spike_depth` extra
  /// phantom pending requests (simulates a pressure spike; provokes sheds).
  double queue_spike_prob = 0.0;
  std::size_t queue_spike_depth = 0;

  // ---- Shard-scoped sites (consumed by ShardRouter) -----------------------
  /// Probability a routed request kills its rendezvous-primary shard before
  /// the first attempt (the shard's server stops; recovery goes through the
  /// probation circuit breaker).
  double shard_kill_prob = 0.0;
  /// Probability a routed request stalls its rendezvous-primary shard for
  /// `shard_stall` — attempts against a stalled shard fail over.
  double shard_stall_prob = 0.0;
  std::chrono::microseconds shard_stall{0};
  /// Probability a router health probe fails without reaching the shard.
  double probe_failure_prob = 0.0;
  /// Probability load_snapshot flips one bit of the file image (must be
  /// rejected with a typed SnapshotError).
  double snapshot_corrupt_prob = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return engine_failure_prob > 0.0 || fallback_failure_prob > 0.0 ||
           batcher_delay_prob > 0.0 || queue_spike_prob > 0.0 ||
           shard_kill_prob > 0.0 || shard_stall_prob > 0.0 ||
           probe_failure_prob > 0.0 || snapshot_corrupt_prob > 0.0;
  }
};

class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultPlan{}) {}
  explicit FaultInjector(const FaultPlan& plan);

  [[nodiscard]] bool enabled() const noexcept { return plan_.enabled(); }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // ---- Decision sites (thread-safe; each draw advances its stream) --------
  [[nodiscard]] bool should_fail_engine() noexcept;
  [[nodiscard]] bool should_fail_fallback() noexcept;
  [[nodiscard]] bool should_delay_batcher() noexcept;
  /// Phantom pending requests this admission decision should add (0 or
  /// plan().queue_spike_depth).
  [[nodiscard]] std::size_t queue_spike() noexcept;
  [[nodiscard]] bool should_kill_shard() noexcept;
  [[nodiscard]] bool should_stall_shard() noexcept;
  [[nodiscard]] bool should_fail_probe() noexcept;
  /// When the snapshot-corruption site fires, the (deterministic) bit index
  /// in [0, size_bits) that the loader must flip; nullopt otherwise.
  [[nodiscard]] std::optional<std::uint64_t> corrupt_snapshot_bit(
      std::uint64_t size_bits) noexcept;

  // ---- Injected-fault observability (for tests and stats printing) --------
  [[nodiscard]] std::uint64_t engine_failures_injected() const noexcept {
    return fired(kEngine);
  }
  [[nodiscard]] std::uint64_t fallback_failures_injected() const noexcept {
    return fired(kFallback);
  }
  [[nodiscard]] std::uint64_t batcher_delays_injected() const noexcept {
    return fired(kDelay);
  }
  [[nodiscard]] std::uint64_t queue_spikes_injected() const noexcept {
    return fired(kSpike);
  }
  [[nodiscard]] std::uint64_t shard_kills_injected() const noexcept {
    return fired(kShardKill);
  }
  [[nodiscard]] std::uint64_t shard_stalls_injected() const noexcept {
    return fired(kShardStall);
  }
  [[nodiscard]] std::uint64_t probe_failures_injected() const noexcept {
    return fired(kProbeFail);
  }
  [[nodiscard]] std::uint64_t snapshot_corruptions_injected() const noexcept {
    return fired(kSnapshotCorrupt);
  }

 private:
  enum Site : std::size_t {
    kEngine = 0,
    kFallback,
    kDelay,
    kSpike,
    kShardKill,
    kShardStall,
    kProbeFail,
    kSnapshotCorrupt,
    kSites
  };

  [[nodiscard]] bool draw(Site site, double prob) noexcept;
  [[nodiscard]] std::uint64_t fired(Site site) const noexcept {
    return fired_[site].load(std::memory_order_relaxed);
  }

  FaultPlan plan_;
  CounterRng rngs_[kSites];
  std::atomic<std::uint64_t> next_[kSites];
  std::atomic<std::uint64_t> fired_[kSites];
};

}  // namespace loom::serve
