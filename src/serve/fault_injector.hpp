// Deterministic, seed-replayable fault injection for the serving stack.
//
// The injector is compiled in always and disabled by default (every
// probability in FaultPlan is zero); enabling it costs one counter-based
// RNG draw per decision site. Each site owns an independent draw stream
// (CounterRng stream = site id) indexed by an atomic per-site counter, so
// for a fixed seed the k-th decision at a site is a pure function of
// (seed, site, k): a replayed run with the same number of visits to each
// site injects the same multiset of faults regardless of thread
// interleaving — which is what makes overload stress tests replayable via
// LOOM_SERVE_FAULT_SEED.
//
// Sites wired into InferenceServer:
//   engine_failure   -- thrown as TransientEngineError from the bit-sliced
//                       engine's pre-run hook (primary attempts + retries;
//                       the scalar fallback engine has no hook)
//   fallback_failure -- same, but for the scalar-oracle fallback attempt,
//                       driving the fail-futures-individually path
//   batcher_delay    -- worker sleeps `batcher_delay` after popping a batch
//   queue_spike      -- admission control sees `queue_spike_depth` phantom
//                       pending requests, provoking watermark sheds
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"

namespace loom::serve {

/// Fault-injection configuration. All probabilities in [0, 1]; all zero
/// (the default) disables injection entirely.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Probability a bit-sliced engine run (initial attempt or retry) throws
  /// TransientEngineError before doing any work.
  double engine_failure_prob = 0.0;
  /// Probability the scalar-oracle fallback attempt throws too (exercises
  /// per-future failure without crashing the worker).
  double fallback_failure_prob = 0.0;
  /// Probability a popped batch is delayed by `batcher_delay` before
  /// running (simulates a slow worker; builds queue pressure).
  double batcher_delay_prob = 0.0;
  std::chrono::microseconds batcher_delay{0};
  /// Probability one admission decision observes `queue_spike_depth` extra
  /// phantom pending requests (simulates a pressure spike; provokes sheds).
  double queue_spike_prob = 0.0;
  std::size_t queue_spike_depth = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return engine_failure_prob > 0.0 || fallback_failure_prob > 0.0 ||
           batcher_delay_prob > 0.0 || queue_spike_prob > 0.0;
  }
};

class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultPlan{}) {}
  explicit FaultInjector(const FaultPlan& plan);

  [[nodiscard]] bool enabled() const noexcept { return plan_.enabled(); }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // ---- Decision sites (thread-safe; each draw advances its stream) --------
  [[nodiscard]] bool should_fail_engine() noexcept;
  [[nodiscard]] bool should_fail_fallback() noexcept;
  [[nodiscard]] bool should_delay_batcher() noexcept;
  /// Phantom pending requests this admission decision should add (0 or
  /// plan().queue_spike_depth).
  [[nodiscard]] std::size_t queue_spike() noexcept;

  // ---- Injected-fault observability (for tests and stats printing) --------
  [[nodiscard]] std::uint64_t engine_failures_injected() const noexcept {
    return fired_[kEngine].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fallback_failures_injected() const noexcept {
    return fired_[kFallback].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t batcher_delays_injected() const noexcept {
    return fired_[kDelay].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t queue_spikes_injected() const noexcept {
    return fired_[kSpike].load(std::memory_order_relaxed);
  }

 private:
  enum Site : std::size_t { kEngine = 0, kFallback, kDelay, kSpike, kSites };

  [[nodiscard]] bool draw(Site site, double prob) noexcept;

  FaultPlan plan_;
  CounterRng rngs_[kSites];
  std::atomic<std::uint64_t> next_[kSites];
  std::atomic<std::uint64_t> fired_[kSites];
};

}  // namespace loom::serve
