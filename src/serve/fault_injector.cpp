#include "serve/fault_injector.hpp"

#include "common/error.hpp"

namespace loom::serve {

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      rngs_{CounterRng(plan.seed, kEngine), CounterRng(plan.seed, kFallback),
            CounterRng(plan.seed, kDelay), CounterRng(plan.seed, kSpike)} {
  LOOM_EXPECTS(plan_.engine_failure_prob >= 0.0 &&
               plan_.engine_failure_prob <= 1.0);
  LOOM_EXPECTS(plan_.fallback_failure_prob >= 0.0 &&
               plan_.fallback_failure_prob <= 1.0);
  LOOM_EXPECTS(plan_.batcher_delay_prob >= 0.0 &&
               plan_.batcher_delay_prob <= 1.0);
  LOOM_EXPECTS(plan_.queue_spike_prob >= 0.0 && plan_.queue_spike_prob <= 1.0);
  LOOM_EXPECTS(plan_.batcher_delay.count() >= 0);
  for (std::size_t s = 0; s < kSites; ++s) {
    next_[s].store(0, std::memory_order_relaxed);
    fired_[s].store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::draw(Site site, double prob) noexcept {
  if (prob <= 0.0) return false;
  const std::uint64_t index =
      next_[site].fetch_add(1, std::memory_order_relaxed);
  const bool fire = rngs_[site].uniform(index) < prob;
  if (fire) fired_[site].fetch_add(1, std::memory_order_relaxed);
  return fire;
}

bool FaultInjector::should_fail_engine() noexcept {
  return draw(kEngine, plan_.engine_failure_prob);
}

bool FaultInjector::should_fail_fallback() noexcept {
  return draw(kFallback, plan_.fallback_failure_prob);
}

bool FaultInjector::should_delay_batcher() noexcept {
  return draw(kDelay, plan_.batcher_delay_prob);
}

std::size_t FaultInjector::queue_spike() noexcept {
  return draw(kSpike, plan_.queue_spike_prob) ? plan_.queue_spike_depth : 0;
}

}  // namespace loom::serve
