#include "serve/fault_injector.hpp"

#include "common/error.hpp"

namespace loom::serve {

namespace {

void expect_prob(double p) {
  LOOM_EXPECTS(p >= 0.0 && p <= 1.0);
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      rngs_{CounterRng(plan.seed, kEngine),
            CounterRng(plan.seed, kFallback),
            CounterRng(plan.seed, kDelay),
            CounterRng(plan.seed, kSpike),
            CounterRng(plan.seed, kShardKill),
            CounterRng(plan.seed, kShardStall),
            CounterRng(plan.seed, kProbeFail),
            CounterRng(plan.seed, kSnapshotCorrupt)} {
  expect_prob(plan_.engine_failure_prob);
  expect_prob(plan_.fallback_failure_prob);
  expect_prob(plan_.batcher_delay_prob);
  expect_prob(plan_.queue_spike_prob);
  expect_prob(plan_.shard_kill_prob);
  expect_prob(plan_.shard_stall_prob);
  expect_prob(plan_.probe_failure_prob);
  expect_prob(plan_.snapshot_corrupt_prob);
  LOOM_EXPECTS(plan_.batcher_delay.count() >= 0);
  LOOM_EXPECTS(plan_.shard_stall.count() >= 0);
  for (std::size_t s = 0; s < kSites; ++s) {
    next_[s].store(0, std::memory_order_relaxed);
    fired_[s].store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::draw(Site site, double prob) noexcept {
  if (prob <= 0.0) return false;
  const std::uint64_t index =
      next_[site].fetch_add(1, std::memory_order_relaxed);
  const bool fire = rngs_[site].uniform(index) < prob;
  if (fire) fired_[site].fetch_add(1, std::memory_order_relaxed);
  return fire;
}

bool FaultInjector::should_fail_engine() noexcept {
  return draw(kEngine, plan_.engine_failure_prob);
}

bool FaultInjector::should_fail_fallback() noexcept {
  return draw(kFallback, plan_.fallback_failure_prob);
}

bool FaultInjector::should_delay_batcher() noexcept {
  return draw(kDelay, plan_.batcher_delay_prob);
}

std::size_t FaultInjector::queue_spike() noexcept {
  return draw(kSpike, plan_.queue_spike_prob) ? plan_.queue_spike_depth : 0;
}

bool FaultInjector::should_kill_shard() noexcept {
  return draw(kShardKill, plan_.shard_kill_prob);
}

bool FaultInjector::should_stall_shard() noexcept {
  return draw(kShardStall, plan_.shard_stall_prob);
}

bool FaultInjector::should_fail_probe() noexcept {
  return draw(kProbeFail, plan_.probe_failure_prob);
}

std::optional<std::uint64_t> FaultInjector::corrupt_snapshot_bit(
    std::uint64_t size_bits) noexcept {
  if (plan_.snapshot_corrupt_prob <= 0.0 || size_bits == 0) return std::nullopt;
  const std::uint64_t index =
      next_[kSnapshotCorrupt].fetch_add(1, std::memory_order_relaxed);
  if (rngs_[kSnapshotCorrupt].uniform(index) >= plan_.snapshot_corrupt_prob) {
    return std::nullopt;
  }
  fired_[kSnapshotCorrupt].fetch_add(1, std::memory_order_relaxed);
  // A second draw (distinct derived index on the same stream) picks the bit,
  // so which bit flips is as replayable as whether the site fired.
  return rngs_[kSnapshotCorrupt].below(index ^ 0x534E415073686F74ull, size_bits);
}

}  // namespace loom::serve
