// Crash-safe binary model snapshots: a versioned, section-checksummed
// interchange format for registry models, so shards load a profiled
// network + materialized weights + calibration spec from disk instead of
// rebuilding (weight synthesis + calibration bisection) per process.
//
// Layout (all integers little-endian, no padding, no don't-care bytes):
//
//   header   magic "LOOMSNAP" (8) | version u32 | section_count u32
//   section  id u32 | length u64 | fnv1a64(payload) u64 | payload bytes
//   ...      sections in the exact order kName, kNetwork, kProfile,
//            kInputSpec, kWeights; the last payload must end exactly at EOF
//
// Every byte of the file is covered: payload bytes by the per-section
// FNV-1a checksum, structural bytes (magic, version, counts, ids, lengths,
// checksums) by strict validation — so any truncation, trailing garbage,
// bit flip or version skew fails decode with a typed SnapshotError
// (common/error.hpp), never UB. Pinned by fuzz-style corruption tests in
// tests/test_model_snapshot.cpp.
//
// Writes are crash-safe: save_snapshot writes to `<path>.tmp` and renames
// over `path` only after a successful full write, so a crash mid-write
// never leaves a half-written file at the published name (and a reader
// racing the writer sees either the old complete file or the new one).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/fault_injector.hpp"
#include "serve/model_registry.hpp"

namespace loom::serve {

/// Format version accepted by this build. Bumped on any layout change;
/// decode rejects every other value with SnapshotError (version skew is a
/// corruption mode, not a best-effort migration).
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// FNV-1a over a byte range — the section checksum primitive (also reused
/// by the shard router's rendezvous hash).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept;
[[nodiscard]] std::uint64_t fnv1a64(const std::string& s) noexcept;

/// Serialize a model to the snapshot byte image (exposed so the corruption
/// tests can flip bits / truncate without touching disk).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const Model& model);

/// Decode a snapshot image. Throws SnapshotError on any malformed input;
/// a successful decode round-trips byte-identically (network geometry,
/// precisions, weights, profile and calibration spec all exact, so outputs
/// of a loaded model match the original bit for bit).
[[nodiscard]] Model decode_snapshot(std::span<const std::uint8_t> bytes);

/// Write `model` to `path` atomically (tmp file + rename). Throws
/// SnapshotError on I/O failure.
void save_snapshot(const Model& model, const std::string& path);

/// Read and decode a snapshot from disk. Short reads, truncation and every
/// decode failure throw SnapshotError. When `injector` is non-null its
/// snapshot_corrupt site may flip one deterministic bit of the file image
/// before decoding (the corrupt-snapshot-on-load chaos fault) — which must
/// then surface as SnapshotError like any real corruption.
[[nodiscard]] std::shared_ptr<const Model> load_snapshot(
    const std::string& path, FaultInjector* injector = nullptr);

}  // namespace loom::serve
