// Sharded fault-tolerant serving: a ShardRouter owns N InferenceServer
// shards and routes requests with rendezvous hashing, health-gated
// failover, per-tenant token-bucket quotas and optional hedging — the
// fleet-scale layer above the single-server overload machinery.
//
// Routing: every request ranks the shards by rendezvous (highest-random-
// weight) hashing on (model, tenant) — each key has a stable shard
// preference order, so cache/batching affinity survives shard failures
// (only keys whose primary died move, to their next-ranked shard) and
// recovers automatically when the shard returns.
//
// Health: each shard carries error-rate and latency EWMAs fed by real
// request outcomes and (optionally) a background prober that plays
// synthetic requests through the shard. The per-shard state machine is a
// circuit breaker:
//
//   kHealthy --error EWMA >= degrade_error_rate--> kDegraded
//   kDegraded --EWMA back under half the threshold--> kHealthy
//   any --consecutive failures >= eject_after_consecutive,
//        or EWMA >= eject_error_rate, or the shard dies--> kEjected
//   kEjected --backoff expires--> kProbation (half-open: trial traffic)
//   kProbation --reenter_successes consecutive successes--> kHealthy
//   kProbation --any failure--> kEjected (backoff doubles, capped)
//
// Ejected shards take no traffic until their backoff expires. A *dead*
// shard (killed, or restart factory threw) is additionally marked not
// alive; when its backoff expires the router rebuilds it through the
// ShardFactory (which may load model snapshots — and may fail again under
// injected snapshot corruption, leaving it dead for another backoff).
//
// Failover: submit() walks the rendezvous ranking, skipping ineligible
// shards; a shed, timeout, injected stall or engine failure on one shard
// retries on the next-ranked eligible shard within the caller's deadline.
// Interactive requests may hedge: if the primary attempt is still pending
// after hedge_delay, a second attempt races on the next-ranked shard and
// the first success wins. If every shard is unavailable the router forces
// recovery (restarts the best-ranked dead shard ignoring backoff) rather
// than failing a request that still has budget — no-deadline traffic is
// never lost to transient faults. The router never touches outputs, so
// every successful result is byte-identical to a solo run_network.
//
// Quotas: per-tenant token buckets (rate + burst) gate admission before
// any shard is touched. Exhausted tenants get TenantQuotaError, accounted
// separately from overload sheds — after a drain,
//   submitted == completed + quota_rejected + shed + timed_out + failed
// holds in aggregate and per tenant.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "serve/fault_injector.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"

namespace loom::serve {

/// Circuit-breaker state of one shard (see the file comment for the
/// transition diagram).
enum class ShardHealth { kHealthy, kDegraded, kEjected, kProbation };

[[nodiscard]] const char* health_name(ShardHealth h) noexcept;

/// Token-bucket quota: sustained `rate_per_sec` with bursts up to `burst`.
/// A zero rate means unlimited (the bucket never rejects).
struct TenantQuota {
  double rate_per_sec = 0.0;
  double burst = 1.0;
};

/// Per-request routing options.
struct RouteOptions {
  std::string tenant = "default";
  Priority priority = Priority::kInteractive;
  /// Relative end-to-end deadline across all failover attempts (0 = none).
  /// An already-exhausted budget mid-failover stops retrying; the request
  /// resolves DeadlineExceededError and counts as timed_out.
  std::chrono::nanoseconds deadline{0};
  /// Absolute end-to-end deadline (steady clock; max() = none); the
  /// effective budget is the earlier of this and `deadline`. Submitting
  /// with an already-expired absolute deadline rejects immediately with
  /// DeadlineExceededError (counted as timed_out) — mirroring the server
  /// layer's dead-on-arrival rejection.
  std::chrono::steady_clock::time_point deadline_at =
      std::chrono::steady_clock::time_point::max();
  /// Allow a hedged second attempt for interactive requests (subject to
  /// RouterOptions::hedge_delay being non-zero).
  bool allow_hedge = true;
};

struct RouterOptions {
  /// Number of shards, each its own InferenceServer (own workers, queues,
  /// engines) built from `shard`.
  int shards = 2;
  /// Per-shard server configuration. `shard.faults` is ignored — fault
  /// injection for the fleet goes through RouterOptions::faults so router
  /// and servers share one injector and one seed.
  ServeOptions shard;

  // ---- Failover -----------------------------------------------------------
  /// Budget for one attempt on one shard (admission wait + service),
  /// additionally capped by the caller's remaining deadline.
  std::chrono::microseconds attempt_timeout{50000};
  /// Hedge: when an interactive attempt is still pending after this delay,
  /// race a second attempt on the next-ranked shard (0 disables hedging).
  std::chrono::microseconds hedge_delay{0};
  /// Failover passes over the ranking before giving up, for requests with
  /// no deadline (deadlined requests stop when the budget expires).
  int max_passes = 32;

  // ---- Health thresholds --------------------------------------------------
  /// Smoothing for the per-shard error-rate and latency EWMAs.
  double ewma_alpha = 0.3;
  /// Error EWMA at which a healthy shard is marked degraded (still serves,
  /// ranked behind healthy shards); recovers below half this value.
  double degrade_error_rate = 0.5;
  /// Error EWMA at which a shard is ejected outright.
  double eject_error_rate = 0.9;
  /// Consecutive failures that eject a shard regardless of EWMA.
  int eject_after_consecutive = 3;
  /// Initial ejection backoff; doubles per re-ejection up to `max_backoff`,
  /// resets when the shard re-enters healthy.
  std::chrono::milliseconds probation_backoff{5};
  std::chrono::milliseconds max_backoff{200};
  /// Consecutive probation successes required to re-enter healthy.
  int reenter_successes = 2;

  // ---- Probing ------------------------------------------------------------
  /// Background prober period (0 disables the prober thread). Probes play
  /// a synthetic request for `probe_model` through each live shard and feed
  /// the same health EWMAs as real traffic — so probation shards re-enter
  /// and sick shards degrade even when idle.
  std::chrono::milliseconds probe_interval{0};
  /// Model probes run; empty picks the first registered name.
  std::string probe_model;
  std::chrono::microseconds probe_timeout{50000};

  // ---- Quotas -------------------------------------------------------------
  /// Per-tenant quotas; tenants not listed use `default_quota`.
  std::unordered_map<std::string, TenantQuota> tenant_quotas;
  TenantQuota default_quota{};  ///< unlimited by default

  /// Deterministic fault injection, shared by the router (shard kill /
  /// stall / probe-failure / snapshot-corruption sites) and every shard
  /// server (engine / fallback / delay / spike sites).
  FaultPlan faults;
  /// Salt for the rendezvous ranking (changing it reshuffles affinity).
  std::uint64_t rendezvous_seed = 0x4c4f4f4d'53524452ull;  // "LOOMSRDR"
};

/// One recorded health-state transition (for tests and the demo's
/// transition log).
struct HealthTransition {
  int shard = -1;
  ShardHealth from = ShardHealth::kHealthy;
  ShardHealth to = ShardHealth::kHealthy;
  std::chrono::steady_clock::time_point at{};
};

/// Router-side view of one shard.
struct ShardStats {
  ShardHealth health = ShardHealth::kHealthy;
  bool alive = true;
  std::uint64_t routed = 0;     ///< attempts dispatched (incl. health probes)
  std::uint64_t completed = 0;  ///< attempts that returned a result
  std::uint64_t failed = 0;     ///< attempts that errored / timed out
  std::uint64_t kills = 0;      ///< times the shard died
  std::uint64_t restarts = 0;   ///< successful rebuilds
  double error_ewma = 0.0;
  double latency_ewma_ms = 0.0;
  /// The shard server's own accounting (zeroed while the shard is dead —
  /// a rebuilt server starts fresh).
  ServerStats server;
};

/// Per-tenant accounting; same drain invariant as the aggregate.
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t quota_rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t failed = 0;
};

/// Aggregate router statistics. After a drain,
/// submitted == completed + quota_rejected + shed + timed_out + failed.
struct RouterStats {
  std::uint64_t submitted = 0;       ///< submit() calls
  std::uint64_t completed = 0;
  std::uint64_t quota_rejected = 0;  ///< TenantQuotaError at admission
  std::uint64_t shed = 0;            ///< OverloadError after failover
  std::uint64_t timed_out = 0;       ///< DeadlineExceededError outcomes
  std::uint64_t failed = 0;          ///< any other terminal error
  std::uint64_t failovers = 0;       ///< attempts beyond a request's first
  std::uint64_t hedges = 0;          ///< hedged second attempts launched
  std::uint64_t hedge_wins = 0;      ///< hedges that beat the primary
  std::uint64_t forced_recoveries = 0;  ///< restarts forced by zero
                                        ///< eligible shards
  std::vector<ShardStats> shards;
  std::map<std::string, TenantStats> tenants;
  /// Router-observed end-to-end latency of completed requests (includes
  /// failover and hedge time; merged across all tenants).
  LatencyHistogram latency_ns;
  /// Kill/eject -> healthy recovery times, milliseconds.
  Accumulator recovery_ms;
};

/// Everything a shard build gets from the router.
struct ShardContext {
  int shard = -1;
  FaultInjector& faults;  ///< shared injector (snapshot loads hook into it)
};

/// A built shard: its registry (kept alive for the server's lifetime) and
/// the server itself.
struct ShardInstance {
  std::shared_ptr<const ModelRegistry> registry;
  std::shared_ptr<InferenceServer> server;
};

/// Builds (and rebuilds, after kills) one shard. May throw — e.g.
/// SnapshotError from a factory that restores models from corrupted
/// snapshot files; the shard then stays dead until the next backoff expiry.
using ShardFactory = std::function<ShardInstance(const ShardContext&)>;

class ShardRouter {
 public:
  /// Shards share `models` (one registry, N servers). The registry must be
  /// provided as shared ownership so rebuilt shards can reference it.
  ShardRouter(std::shared_ptr<const ModelRegistry> models,
              RouterOptions opts = {});
  /// Shards are built by `factory` — the snapshot-restore path, where each
  /// shard loads its own registry from disk.
  ShardRouter(ShardFactory factory, RouterOptions opts = {});

  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Route one request: quota gate, rendezvous ranking, health-gated
  /// failover (and optional hedge) within the caller's deadline. Blocks
  /// until a result or a terminal error: TenantQuotaError (quota),
  /// OverloadError (all eligible shards shed), DeadlineExceededError
  /// (budget exhausted), ShutdownError (router stopping), or the last
  /// attempt's error. The returned output is byte-identical to a solo
  /// run_network; `result.shard` says which shard served it.
  [[nodiscard]] InferenceResult submit(const std::string& model,
                                       nn::Tensor input,
                                       const RouteOptions& ropts = {});

  /// Stop shard `i` (drain-then-join: its queued work still completes) and
  /// mark it dead + ejected. It re-enters through the factory + probation
  /// path like an injected kill.
  void kill_shard(int shard);
  /// Rebuild a dead shard now (ignoring backoff). Returns false (and keeps
  /// the shard dead) when the factory throws.
  bool restart_shard(int shard);

  /// Refuse new submissions, stop the prober, drain and join every shard.
  /// Idempotent.
  void stop();

  [[nodiscard]] RouterStats stats() const;
  /// Health-transition log, oldest first (capped; the newest are kept).
  [[nodiscard]] std::vector<HealthTransition> transitions() const;
  /// Rendezvous preference order for (model, tenant) — ignores health;
  /// index 0 is the primary. Stable across calls and across restarts.
  [[nodiscard]] std::vector<int> rank_shards(const std::string& model,
                                             const std::string& tenant) const;
  [[nodiscard]] int shard_count() const noexcept { return opts_.shards; }
  [[nodiscard]] const RouterOptions& options() const noexcept { return opts_; }
  [[nodiscard]] const FaultInjector& fault_injector() const noexcept {
    return injector_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Shard {
    std::shared_ptr<InferenceServer> server;  ///< null while dead
    std::shared_ptr<const ModelRegistry> registry;
    ShardHealth health = ShardHealth::kHealthy;
    bool alive = true;
    bool restarting = false;  ///< a thread holds the (unlocked) factory call
    Ewma error_ewma;
    Ewma latency_ewma;
    int consecutive_failures = 0;
    int probation_successes = 0;
    Clock::time_point eject_until = Clock::time_point::min();
    Clock::time_point stall_until = Clock::time_point::min();
    std::chrono::milliseconds backoff{0};
    Clock::time_point down_since = Clock::time_point::min();
    std::uint64_t routed = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t kills = 0;
    std::uint64_t restarts = 0;
  };

  struct Bucket {
    double tokens = 0.0;
    Clock::time_point last{};
    bool seeded = false;
  };

  void build_shards();
  /// Charge one token for `tenant`; false = quota exhausted. Lock held.
  bool charge_quota(const std::string& tenant, Clock::time_point now);
  /// Record a health transition and apply it. Lock held.
  void set_health(int shard, ShardHealth to, Clock::time_point now);
  void record_success(int shard, std::chrono::nanoseconds latency,
                      Clock::time_point now);
  void record_failure(int shard, Clock::time_point now);
  /// True when shard `i` may take traffic now (alive and not inside an
  /// ejection backoff; lazily moves expired ejections to probation).
  bool eligible(int shard, Clock::time_point now);
  /// Rebuild a dead shard via the factory. Lock held on entry and exit
  /// (dropped around the factory call). False when the factory throws.
  bool try_restart(int shard, Clock::time_point now,
                   std::unique_lock<std::mutex>& lock);
  void prober_loop();

  /// One attempt on one shard: try_submit + wait. Returns the result or
  /// rethrows the attempt's error. Lock NOT held.
  [[nodiscard]] InferenceResult attempt(
      const std::shared_ptr<InferenceServer>& server,
      const std::shared_ptr<const Model>& model, const nn::Tensor& input,
      const RouteOptions& ropts, Clock::time_point attempt_deadline);

  RouterOptions opts_;
  ShardFactory factory_;
  FaultInjector injector_;

  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;  ///< wakes the prober at stop()
  std::vector<Shard> shards_;
  std::unordered_map<std::string, Bucket> buckets_;
  RouterStats stats_;
  std::vector<HealthTransition> transitions_;
  bool stopping_ = false;
  std::uint64_t probe_counter_ = 0;

  std::once_flag join_once_;
  std::thread prober_;
};

}  // namespace loom::serve
