#include "energy/coefficients.hpp"

namespace loom::energy {

const EnergyCoefficients& default_energy_coefficients() {
  static const EnergyCoefficients c{};
  return c;
}

const AreaCoefficients& default_area_coefficients() {
  static const AreaCoefficients c{};
  return c;
}

}  // namespace loom::energy
