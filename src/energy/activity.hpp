// Activity counters the simulators fill per layer; the energy model turns
// them into joules via the coefficient tables. Power results are therefore
// data-driven ("actual data-driven activity factors", §4.1): idle lanes,
// trimmed precisions and packed memory traffic all show up here.
#pragma once

#include <cstdint>

namespace loom::energy {

struct Activity {
  // Compute
  std::uint64_t mac_ops = 0;            ///< DPNN 16b MACs actually performed
  std::uint64_t sip_lane_bit_ops = 0;   ///< Loom 1b AND+tree lane-bit operations
  std::uint64_t stripes_lane_ops = 0;   ///< Stripes 1b x 16b lane operations
  // Idle compute slots still draw clock/register power (the reason the
  // paper's large underutilized configurations lose energy efficiency).
  std::uint64_t sip_idle_lane_cycles = 0;
  std::uint64_t stripes_idle_lane_cycles = 0;
  std::uint64_t mac_idle_cycles = 0;
  /// Term-serial (Laconic-style) lanes: effectual term-pair operations and
  /// lane-cycles spent synchronized-idle waiting for the group's slowest lane.
  std::uint64_t laconic_lane_term_ops = 0;
  std::uint64_t laconic_idle_lane_cycles = 0;
  std::uint64_t wr_bits_loaded = 0;     ///< weight-register bit loads
  std::uint64_t detector_values = 0;    ///< values inspected by the precision unit
  std::uint64_t transposer_bits = 0;    ///< output bits rotated for packed AM

  // Storage traffic (bits)
  std::uint64_t abin_read_bits = 0;
  std::uint64_t abin_write_bits = 0;
  std::uint64_t about_read_bits = 0;
  std::uint64_t about_write_bits = 0;
  std::uint64_t am_read_bits = 0;
  std::uint64_t am_write_bits = 0;
  std::uint64_t wm_read_bits = 0;
  std::uint64_t wm_write_bits = 0;
  std::uint64_t dram_read_bits = 0;
  std::uint64_t dram_write_bits = 0;

  // Time (for leakage). `cycles` includes stalls; dram_stall_cycles breaks
  // out how many of them the off-chip channel caused (constrained mode).
  std::uint64_t cycles = 0;
  std::uint64_t dram_stall_cycles = 0;

  void merge(const Activity& other) noexcept;
};

}  // namespace loom::energy
