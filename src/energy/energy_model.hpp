// Turns activity counters into energy. Evaluation is purely multiplicative
// (activity x coefficient) plus an area-proportional leakage term, so every
// reported joule traces back to simulated events.
#pragma once

#include "energy/activity.hpp"
#include "energy/coefficients.hpp"

namespace loom::energy {

struct EnergyBreakdown {
  double compute_pj = 0.0;     ///< MACs / SIP lanes / Stripes lanes
  double registers_pj = 0.0;   ///< weight-register loads
  double detector_pj = 0.0;
  double transposer_pj = 0.0;
  double sram_pj = 0.0;        ///< ABin/ABout
  double edram_pj = 0.0;       ///< AM/WM
  double dram_pj = 0.0;
  double leakage_pj = 0.0;

  [[nodiscard]] double total_pj() const noexcept {
    return compute_pj + registers_pj + detector_pj + transposer_pj + sram_pj +
           edram_pj + dram_pj + leakage_pj;
  }
  [[nodiscard]] double total_onchip_pj() const noexcept {
    return total_pj() - dram_pj;
  }
};

class EnergyModel {
 public:
  /// `area_mm2` drives the leakage term; `bits_per_cycle` selects the SIP
  /// lane energy of the LM1b/2b/4b variants (1 for other architectures).
  EnergyModel(const EnergyCoefficients& coeffs, double area_mm2,
              int bits_per_cycle = 1);

  [[nodiscard]] EnergyBreakdown evaluate(const Activity& activity) const noexcept;

  /// Average power in watts given a cycle count at 1 GHz.
  [[nodiscard]] double average_power_w(const Activity& activity) const noexcept;

 private:
  EnergyCoefficients coeffs_;
  double area_mm2_;
  int bits_per_cycle_;
};

}  // namespace loom::energy
