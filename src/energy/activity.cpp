#include "energy/activity.hpp"

namespace loom::energy {

void Activity::merge(const Activity& other) noexcept {
  mac_ops += other.mac_ops;
  sip_lane_bit_ops += other.sip_lane_bit_ops;
  stripes_lane_ops += other.stripes_lane_ops;
  sip_idle_lane_cycles += other.sip_idle_lane_cycles;
  stripes_idle_lane_cycles += other.stripes_idle_lane_cycles;
  mac_idle_cycles += other.mac_idle_cycles;
  laconic_lane_term_ops += other.laconic_lane_term_ops;
  laconic_idle_lane_cycles += other.laconic_idle_lane_cycles;
  wr_bits_loaded += other.wr_bits_loaded;
  detector_values += other.detector_values;
  transposer_bits += other.transposer_bits;
  abin_read_bits += other.abin_read_bits;
  abin_write_bits += other.abin_write_bits;
  about_read_bits += other.about_read_bits;
  about_write_bits += other.about_write_bits;
  am_read_bits += other.am_read_bits;
  am_write_bits += other.am_write_bits;
  wm_read_bits += other.wm_read_bits;
  wm_write_bits += other.wm_write_bits;
  dram_read_bits += other.dram_read_bits;
  dram_write_bits += other.dram_write_bits;
  cycles += other.cycles;
  dram_stall_cycles += other.dram_stall_cycles;
}

}  // namespace loom::energy
