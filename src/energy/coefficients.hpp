// Energy and area coefficient tables.
//
// The paper measured energy and area on synthesized + laid-out designs
// (Synopsys DC + Cadence Innovus, TSMC 65 nm, 1 GHz; CACTI for the SRAM
// buffers, Destiny for the eDRAM arrays). We cannot run those flows, so
// this header provides 65 nm-class per-operation energies and
// per-component areas, chosen inside the published ranges for such blocks
// and *calibrated* so the resulting architecture-level ratios land near the
// paper's reported ones:
//   - Loom-1b draws ~1.24x DPNN power (so 3.25x speedup -> ~2.63x efficiency),
//   - Loom-2b ~1.06x, Loom-4b ~0.95x, Stripes ~1.14x,
//   - compute-area overheads ~1.34x / 1.25x / 1.16x (§4.4).
// All experiment energy is computed from simulated activity counts times
// these coefficients — the ratios are produced, not asserted.
#pragma once

namespace loom::energy {

/// Per-operation dynamic energies in picojoules (65 nm, 1 V-class).
struct EnergyCoefficients {
  // Compute
  double mac16_pj = 4.00;          ///< 16b x 16b multiply + 32b tree share (DPNN IP lane)
  double sip_lane_base_pj = 0.0155;///< per 1b AND + tree input, shared-register part
  double sip_lane_serial_pj = 0.0065; ///< per-lane AC1/AC2/OR toggling, amortized over bits/cycle
  double stripes_lane_pj = 0.34;   ///< per 1b x 16b serial lane (16b adder share)
  double wr_load_bit_pj = 0.010;   ///< weight-register bit load
  // Idle-slot clocking (clock tree + register retention of a lane that has
  // no work): the underutilization penalty of large configurations.
  double sip_idle_lane_pj = 0.0040;
  double stripes_idle_lane_pj = 0.045;
  double mac_idle_pj = 0.50;
  // Term-serial lane: an effectual term op is an exponent add plus a shifted
  // accumulate — costlier than a Loom 1b lane-bit (it moves a 4b exponent and
  // steers a shifter) but far fewer of them fire.
  double laconic_lane_term_pj = 0.045;
  double laconic_idle_lane_pj = 0.0045;
  double detector_value_pj = 0.020;///< OR-tree + leading-one detect, per value inspected
  double transposer_bit_pj = 0.0025;

  // Storage (per bit accessed)
  double sram_read_bit_pj = 0.08;  ///< ABin/ABout (CACTI-class 8-16 KB SRAM)
  double sram_write_bit_pj = 0.09;
  double edram_read_bit_pj = 0.060;  ///< AM/WM (Destiny-class 1-8 MB eDRAM)
  double edram_write_bit_pj = 0.075;
  double dram_bit_pj = 15.0;       ///< LPDDR4 interface + device, per bit

  // Leakage, charged per cycle per mm^2 of active silicon.
  double leakage_pj_per_mm2_cycle = 2.5;

  /// Per-lane-bit SIP energy for an x-bits-per-cycle variant: the serial
  /// registers are shared across the bits processed in one cycle.
  [[nodiscard]] double sip_lane_bit_pj(int bits_per_cycle) const noexcept {
    return sip_lane_base_pj + sip_lane_serial_pj / bits_per_cycle;
  }
};

/// Component areas in mm^2 (65 nm).
struct AreaCoefficients {
  double mac16_mm2 = 0.0120;       ///< DPNN 16b MAC lane incl. tree share
  double sip_base_mm2 = 0.00020;   ///< SIP shared part (AC1/AC2/OR, control)
  double sip_per_bit_mm2 = 0.00075;///< per bit/cycle: ANDs + tree slice + WRs
  double stripes_unit_mm2 = 0.00095;///< 1b x 16b serial lane incl. weight reg bit share
  /// Term-serial SIP (16 lanes): exponent adders, shifters and the group
  /// term sequencer roughly double a 1b SIP (Laconic reports ~2x PE area
  /// for the term-serial datapath at the same lane count).
  double laconic_sip_mm2 = 0.0018;
  double detector_mm2_per_256 = 0.012; ///< dynamic precision unit per 256-value group
  double transposer_mm2 = 0.05;
  double dispatcher_mm2 = 0.08;    ///< serial data marshalling (Loom/Stripes)

  // Memory macros.
  double sram_mm2_per_kb = 0.0065;  ///< CACTI-class 65 nm SRAM density
  double edram_mm2_per_kb = 0.0018; ///< Destiny-class 65 nm eDRAM density
};

/// The default calibrated tables (see file comment).
[[nodiscard]] const EnergyCoefficients& default_energy_coefficients();
[[nodiscard]] const AreaCoefficients& default_area_coefficients();

}  // namespace loom::energy
