// Post-layout-style area accounting per architecture, composed from the
// coefficient table: compute array + serial-data support blocks + SRAM
// buffers, with the eDRAM memories reported separately so both the §4.4
// compute-area comparison and Figure 5's with-memory comparison can be
// produced.
#pragma once

#include "arch/config.hpp"
#include "energy/coefficients.hpp"
#include "mem/hierarchy.hpp"

namespace loom::energy {

struct AreaBreakdown {
  double compute_mm2 = 0.0;     ///< MAC / SIP / Stripes arrays
  double support_mm2 = 0.0;     ///< detector, transposer, dispatcher
  double sram_mm2 = 0.0;        ///< ABin + ABout
  double edram_mm2 = 0.0;       ///< AM + WM

  /// §4.4-style comparison: logic and buffers, excluding AM/WM macros.
  [[nodiscard]] double core_mm2() const noexcept {
    return compute_mm2 + support_mm2 + sram_mm2;
  }
  /// Figure 5-style comparison: everything on chip.
  [[nodiscard]] double total_mm2() const noexcept {
    return core_mm2() + edram_mm2;
  }
};

[[nodiscard]] AreaBreakdown dpnn_area(const arch::DpnnConfig& cfg,
                                      const mem::MemorySystemConfig& mem,
                                      const AreaCoefficients& c = default_area_coefficients());

[[nodiscard]] AreaBreakdown loom_area(const arch::LoomConfig& cfg,
                                      const mem::MemorySystemConfig& mem,
                                      const AreaCoefficients& c = default_area_coefficients());

[[nodiscard]] AreaBreakdown stripes_area(const arch::StripesConfig& cfg,
                                         const mem::MemorySystemConfig& mem,
                                         const AreaCoefficients& c = default_area_coefficients());

[[nodiscard]] AreaBreakdown laconic_area(const arch::LaconicConfig& cfg,
                                         const mem::MemorySystemConfig& mem,
                                         const AreaCoefficients& c = default_area_coefficients());

}  // namespace loom::energy
