#include "energy/energy_model.hpp"

#include "common/error.hpp"

namespace loom::energy {

EnergyModel::EnergyModel(const EnergyCoefficients& coeffs, double area_mm2,
                         int bits_per_cycle)
    : coeffs_(coeffs), area_mm2_(area_mm2), bits_per_cycle_(bits_per_cycle) {
  LOOM_EXPECTS(area_mm2 > 0.0);
  LOOM_EXPECTS(bits_per_cycle == 1 || bits_per_cycle == 2 || bits_per_cycle == 4);
}

EnergyBreakdown EnergyModel::evaluate(const Activity& a) const noexcept {
  EnergyBreakdown e;
  e.compute_pj =
      static_cast<double>(a.mac_ops) * coeffs_.mac16_pj +
      static_cast<double>(a.sip_lane_bit_ops) * coeffs_.sip_lane_bit_pj(bits_per_cycle_) +
      static_cast<double>(a.stripes_lane_ops) * coeffs_.stripes_lane_pj +
      static_cast<double>(a.sip_idle_lane_cycles) * coeffs_.sip_idle_lane_pj +
      static_cast<double>(a.stripes_idle_lane_cycles) * coeffs_.stripes_idle_lane_pj +
      static_cast<double>(a.mac_idle_cycles) * coeffs_.mac_idle_pj +
      static_cast<double>(a.laconic_lane_term_ops) * coeffs_.laconic_lane_term_pj +
      static_cast<double>(a.laconic_idle_lane_cycles) * coeffs_.laconic_idle_lane_pj;
  e.registers_pj = static_cast<double>(a.wr_bits_loaded) * coeffs_.wr_load_bit_pj;
  e.detector_pj = static_cast<double>(a.detector_values) * coeffs_.detector_value_pj;
  e.transposer_pj = static_cast<double>(a.transposer_bits) * coeffs_.transposer_bit_pj;
  e.sram_pj =
      static_cast<double>(a.abin_read_bits + a.about_read_bits) * coeffs_.sram_read_bit_pj +
      static_cast<double>(a.abin_write_bits + a.about_write_bits) * coeffs_.sram_write_bit_pj;
  e.edram_pj =
      static_cast<double>(a.am_read_bits + a.wm_read_bits) * coeffs_.edram_read_bit_pj +
      static_cast<double>(a.am_write_bits + a.wm_write_bits) * coeffs_.edram_write_bit_pj;
  e.dram_pj =
      static_cast<double>(a.dram_read_bits + a.dram_write_bits) * coeffs_.dram_bit_pj;
  e.leakage_pj = static_cast<double>(a.cycles) * area_mm2_ *
                 coeffs_.leakage_pj_per_mm2_cycle;
  return e;
}

double EnergyModel::average_power_w(const Activity& a) const noexcept {
  if (a.cycles == 0) return 0.0;
  // 1 GHz: pJ / cycle == mW; convert to watts.
  return evaluate(a).total_pj() / static_cast<double>(a.cycles) * 1e-3;
}

}  // namespace loom::energy
