#include "energy/area_model.hpp"

namespace loom::energy {

namespace {

double buffers_mm2(const mem::MemorySystemConfig& mem, const AreaCoefficients& c) {
  const double kb =
      static_cast<double>(mem.abin_bytes + mem.about_bytes) / 1024.0;
  return kb * c.sram_mm2_per_kb;
}

double edram_mm2(const mem::MemorySystemConfig& mem, const AreaCoefficients& c) {
  const double kb = static_cast<double>(mem.am_bytes + mem.wm_bytes) / 1024.0;
  return kb * c.edram_mm2_per_kb;
}

}  // namespace

AreaBreakdown dpnn_area(const arch::DpnnConfig& cfg,
                        const mem::MemorySystemConfig& mem,
                        const AreaCoefficients& c) {
  AreaBreakdown a;
  a.compute_mm2 = static_cast<double>(cfg.equiv_macs) * c.mac16_mm2;
  a.support_mm2 = 0.0;
  a.sram_mm2 = buffers_mm2(mem, c);
  a.edram_mm2 = edram_mm2(mem, c);
  return a;
}

AreaBreakdown loom_area(const arch::LoomConfig& cfg,
                        const mem::MemorySystemConfig& mem,
                        const AreaCoefficients& c) {
  AreaBreakdown a;
  const double sip_mm2 =
      c.sip_base_mm2 + c.sip_per_bit_mm2 * static_cast<double>(cfg.bits_per_cycle);
  a.compute_mm2 = static_cast<double>(cfg.sips()) * sip_mm2;
  const double detector_groups =
      static_cast<double>(cfg.lanes * cfg.cols()) / 256.0;
  a.support_mm2 = detector_groups * c.detector_mm2_per_256 + c.transposer_mm2 +
                  c.dispatcher_mm2;
  a.sram_mm2 = buffers_mm2(mem, c);
  a.edram_mm2 = edram_mm2(mem, c);
  return a;
}

AreaBreakdown laconic_area(const arch::LaconicConfig& cfg,
                           const mem::MemorySystemConfig& mem,
                           const AreaCoefficients& c) {
  AreaBreakdown a;
  a.compute_mm2 = static_cast<double>(cfg.sips()) * c.laconic_sip_mm2;
  // Same detector granularity as LM1b (the term counts come out of the same
  // OR planes), plus transposer and dispatcher for the serialized streams.
  const double detector_groups =
      static_cast<double>(cfg.lanes * cfg.cols()) / 256.0;
  a.support_mm2 = detector_groups * c.detector_mm2_per_256 + c.transposer_mm2 +
                  c.dispatcher_mm2;
  a.sram_mm2 = buffers_mm2(mem, c);
  a.edram_mm2 = edram_mm2(mem, c);
  return a;
}

AreaBreakdown stripes_area(const arch::StripesConfig& cfg,
                           const mem::MemorySystemConfig& mem,
                           const AreaCoefficients& c) {
  AreaBreakdown a;
  const double lanes = static_cast<double>(cfg.filters()) *
                       static_cast<double>(cfg.windows) *
                       static_cast<double>(cfg.lanes);
  a.compute_mm2 = lanes * c.stripes_unit_mm2;
  const double detector_groups =
      cfg.dynamic_act_precision
          ? static_cast<double>(cfg.lanes * cfg.windows) / 256.0
          : 0.0;
  a.support_mm2 = detector_groups * c.detector_mm2_per_256 + c.dispatcher_mm2;
  a.sram_mm2 = buffers_mm2(mem, c);
  a.edram_mm2 = edram_mm2(mem, c);
  return a;
}

}  // namespace loom::energy
